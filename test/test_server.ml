(* The acqd query service, exercised in-process over Unix.socketpair:
   wire envelopes round-trip, daemon COUNTs match single-shot Api.run
   bit-for-bit per seed (for jobs 1, 2 and 4), the plan/result caches
   keep consistent counters and a result hit does no estimation work,
   admission control refuses (never hangs) beyond the queue bound, and
   the scheduler drains for graceful shutdown. *)

module Api = Approxcount.Api
module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Error = Ac_runtime.Error
module Json = Ac_analysis.Json
module Wire = Ac_server.Wire
module Cache = Ac_server.Cache
module Catalog = Ac_server.Catalog
module Scheduler = Ac_server.Scheduler
module Server = Ac_server.Server

let db () =
  let rng = Random.State.make [| 2022 |] in
  Ac_workload.Graph.to_structure
    (Ac_workload.Graph.random_gnp ~rng 24 0.25)

let queries =
  [
    "ans(x,y) :- E(x,y), x != y";
    "ans(x) :- E(x,y), E(y,z)";
    "ans(x,y) :- E(x,y), !E(y,x)";
  ]

(* ---------- wire envelopes ---------- *)

let roundtrip_request req =
  match Wire.request_of_json (Wire.request_to_json req) with
  | Ok req' -> req' = req
  | Error msg -> Alcotest.failf "request did not round-trip: %s" msg

let test_wire_request_roundtrip () =
  let db = Wire.Named "g" in
  List.iter
    (fun req ->
      Alcotest.(check bool) "request round-trips" true (roundtrip_request req))
    [
      Wire.Ping;
      Wire.Stats;
      Wire.Use "people";
      Wire.Count (Wire.params ~db "ans(x) :- E(x,y)");
      Wire.Count
        (Wire.params ~eps:0.5 ~delta:0.01 ~method_:Api.Fpras ~seed:7 ~jobs:4
           ~timeout_ms:250 ~max_heap_mb:64 ~strict:true ~db "ans(x) :- E(x,y)");
      Wire.Count (Wire.params ~db:(Wire.Inline "universe 2\nE 0 1\n") "q");
      Wire.Count (Wire.params ~db:Wire.Session "q");
      Wire.Sample { params = Wire.params ~seed:3 ~db "q"; draws = 5 };
    ]

let test_wire_estimate_bit_exact () =
  (* %.6g alone would lose bits; the hex side-channel must not *)
  List.iter
    (fun estimate ->
      let outcome =
        {
          Wire.estimate;
          exact = false;
          rung = Some "fptras/tree-dp";
          guarantee = true;
          degraded = false;
          attempts =
            [ { Wire.rung = "fpras"; error_class = "budget"; error_message = "m" } ];
          seed = 42;
          jobs = 2;
          ticks = 123;
          elapsed_ms = 1.5;
          trace = None;
          plan_cache = "miss";
          result_cache = "miss";
        }
      in
      match Wire.response_of_json (Wire.response_to_json (Wire.Counted outcome)) with
      | Ok (Wire.Counted o) ->
          Alcotest.(check bool)
            (Printf.sprintf "bits of %h survive" estimate)
            true
            (Int64.bits_of_float o.Wire.estimate
            = Int64.bits_of_float estimate);
          Alcotest.(check bool) "outcome round-trips" true (o = outcome)
      | Ok _ -> Alcotest.fail "wrong arm"
      | Error msg -> Alcotest.failf "response did not round-trip: %s" msg)
    [ 0.1 +. 0.2; 1.0 /. 3.0; 1e300; 280.0; 0.0 ]

let test_wire_refused_codes () =
  List.iter
    (fun err ->
      match Wire.response_of_json (Wire.response_to_json (Wire.response_of_error err)) with
      | Ok (Wire.Refused { code; error_class; _ }) ->
          Alcotest.(check int) "code is the exit code" (Error.exit_code err) code;
          Alcotest.(check string) "class" (Error.class_name err) error_class
      | Ok _ -> Alcotest.fail "not refused"
      | Error msg -> Alcotest.failf "round-trip: %s" msg)
    [
      Error.Parse { source = "q"; msg = "m" };
      Error.Io { file = "f"; msg = "m" };
      Error.Overloaded "m";
      Error.Internal "m";
    ]

(* ---------- an in-process daemon over socketpair ---------- *)

type client = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  thread : Thread.t;
}

let connect server =
  let client_fd, server_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let thread =
    Thread.create (fun () -> Server.serve_connection server server_fd) ()
  in
  {
    fd = client_fd;
    ic = Unix.in_channel_of_descr client_fd;
    oc = Unix.out_channel_of_descr client_fd;
    thread;
  }

let call client req =
  Wire.write_json client.oc (Wire.request_to_json req);
  match Wire.read_json client.ic with
  | Wire.Msg j -> (
      match Wire.response_of_json j with
      | Ok r -> r
      | Error msg -> Alcotest.failf "bad response: %s" msg)
  | Wire.Eof -> Alcotest.fail "server hung up"
  | Wire.Bad msg -> Alcotest.failf "unparseable response: %s" msg

let disconnect client =
  (try Unix.shutdown client.fd Unix.SHUTDOWN_ALL
   with Unix.Unix_error _ -> ());
  Thread.join client.thread;
  try Unix.close client.fd with Unix.Unix_error _ -> ()

let with_server ?config f =
  let server = Server.create ?config () in
  ignore (Catalog.add (Server.catalog server) ~name:"g" (db ()));
  f server

let with_client ?config f =
  with_server ?config (fun server ->
      let client = connect server in
      Fun.protect ~finally:(fun () -> disconnect client) (fun () ->
          f server client))

let expect_counted = function
  | Wire.Counted o -> o
  | Wire.Refused { error_class; message; _ } ->
      Alcotest.failf "refused [%s]: %s" error_class message
  | _ -> Alcotest.fail "expected a COUNT response"

(* ---------- parity with the single-shot Api ---------- *)

let single_shot ?(method_ = Api.Auto) ~seed ~jobs query_text =
  let query = Result.get_ok (Ecq.parse_result query_text) in
  match Api.run (Api.request ~method_ ~seed ~jobs query (db ())) with
  | Ok r -> r
  | Error e -> Alcotest.failf "single-shot failed: %s" (Error.message e)

let test_count_matches_single_shot () =
  with_client (fun _server client ->
      ignore (call client (Wire.Use "g"));
      List.iter
        (fun query ->
          List.iter
            (fun jobs ->
              let seed = 1000 + (17 * jobs) in
              let expected = single_shot ~seed ~jobs query in
              let o =
                expect_counted
                  (call client
                     (Wire.Count
                        (Wire.params ~seed ~jobs ~db:Wire.Session query)))
              in
              Alcotest.(check bool)
                (Printf.sprintf "estimate bits (%s, jobs %d)" query jobs)
                true
                (Int64.bits_of_float o.Wire.estimate
                = Int64.bits_of_float expected.Api.estimate);
              Alcotest.(check (option string)) "rung"
                (Option.map Approxcount.Planner.rung_name expected.Api.rung)
                o.Wire.rung;
              Alcotest.(check bool) "degraded" expected.Api.degraded
                o.Wire.degraded;
              Alcotest.(check int) "degradation trail length"
                (List.length expected.Api.attempts)
                (List.length o.Wire.attempts);
              Alcotest.(check int) "seed echoed" seed o.Wire.seed)
            [ 1; 2; 4 ])
        queries)

(* ---------- cache semantics ---------- *)

let cache_counter server name field =
  match
    Option.bind (Json.mem name (Server.stats_json server)) (Json.mem field)
  with
  | Some (Json.Int v) -> v
  | _ -> Alcotest.failf "stats_json lacks %s.%s" name field

let test_result_cache_hit_skips_work () =
  with_client (fun server client ->
      ignore (call client (Wire.Use "g"));
      let params = Wire.params ~seed:5 ~db:Wire.Session (List.hd queries) in
      let cold = expect_counted (call client (Wire.Count params)) in
      Alcotest.(check string) "cold misses" "miss" cold.Wire.result_cache;
      Alcotest.(check bool) "cold did work" true (cold.Wire.ticks > 0);
      let hot = expect_counted (call client (Wire.Count params)) in
      Alcotest.(check string) "hot hits" "hit" hot.Wire.result_cache;
      Alcotest.(check int) "hot does no estimation work" 0 hot.Wire.ticks;
      Alcotest.(check bool) "same bits" true
        (Int64.bits_of_float cold.Wire.estimate
        = Int64.bits_of_float hot.Wire.estimate);
      (* same query, fresh seed: the plan is reusable, the result is not *)
      let fresh =
        expect_counted
          (call client
             (Wire.Count
                (Wire.params ~seed:6 ~db:Wire.Session (List.hd queries))))
      in
      Alcotest.(check string) "fresh seed misses results" "miss"
        fresh.Wire.result_cache;
      Alcotest.(check string) "fresh seed hits the plan" "hit"
        fresh.Wire.plan_cache;
      (* an unseeded request must bypass the result cache: its answer is
         not replayable, so caching it would be a lie *)
      let unseeded =
        expect_counted
          (call client
             (Wire.Count (Wire.params ~db:Wire.Session (List.hd queries))))
      in
      Alcotest.(check string) "unseeded bypasses" "bypass"
        unseeded.Wire.result_cache;
      Alcotest.(check int) "result hits" 1
        (cache_counter server "result_cache" "hits");
      Alcotest.(check int) "result misses" 2
        (cache_counter server "result_cache" "misses"))

let test_counters_consistent_under_concurrency () =
  let n_clients = 4 and m_requests = 5 in
  with_server (fun server ->
      let expected = Hashtbl.create 16 in
      List.iteri
        (fun qi query ->
          for k = 0 to 1 do
            let seed = 100 + (10 * qi) + k in
            Hashtbl.replace expected (query, seed)
              (single_shot ~seed ~jobs:1 query).Api.estimate
          done)
        queries;
      let failures = Atomic.make 0 in
      let worker ci =
        let client = connect server in
        Fun.protect ~finally:(fun () -> disconnect client) (fun () ->
            ignore (call client (Wire.Use "g"));
            for r = 0 to m_requests - 1 do
              let qi = (ci + r) mod List.length queries in
              let query = List.nth queries qi in
              let seed = 100 + (10 * qi) + (r mod 2) in
              let o =
                expect_counted
                  (call client
                     (Wire.Count (Wire.params ~seed ~db:Wire.Session query)))
              in
              if
                Int64.bits_of_float o.Wire.estimate
                <> Int64.bits_of_float (Hashtbl.find expected (query, seed))
              then Atomic.incr failures
            done)
      in
      let threads =
        List.init n_clients (fun ci -> Thread.create worker ci)
      in
      List.iter Thread.join threads;
      Alcotest.(check int) "every concurrent response matches single-shot" 0
        (Atomic.get failures);
      let hits = cache_counter server "result_cache" "hits"
      and misses = cache_counter server "result_cache" "misses" in
      Alcotest.(check int) "every seeded COUNT consulted the result cache"
        (n_clients * m_requests)
        (hits + misses);
      (* the plan cache is consulted exactly on result misses that went
         on to compute — a miss that joined identical in-flight work
         (single-flight dedupe) never reaches the planner *)
      let followed = cache_counter server "inflight_dedup" "followed" in
      Alcotest.(check int) "plan lookups = computed result misses"
        (misses - followed)
        (cache_counter server "plan_cache" "hits"
        + cache_counter server "plan_cache" "misses"))

(* ---------- admission control ---------- *)

let test_overloaded_refusal () =
  let config = { Server.default_config with queue_capacity = 1 } in
  with_client ~config (fun server client ->
      ignore (call client (Wire.Use "g"));
      (* occupy the only slot with a request blocked on a latch *)
      let gate_m = Mutex.create () and gate_c = Condition.create () in
      let release = ref false and entered = ref false in
      let blocker =
        Thread.create
          (fun () ->
            ignore
              (Scheduler.submit (Server.scheduler server) ~label:"blocker"
                 (fun _slice ->
                   Mutex.lock gate_m;
                   entered := true;
                   Condition.broadcast gate_c;
                   while not !release do
                     Condition.wait gate_c gate_m
                   done;
                   Mutex.unlock gate_m)))
          ()
      in
      Mutex.lock gate_m;
      while not !entered do
        Condition.wait gate_c gate_m
      done;
      Mutex.unlock gate_m;
      (* the wire request beyond the bound is refused, not queued *)
      (match
         call client
           (Wire.Count (Wire.params ~seed:1 ~db:Wire.Session (List.hd queries)))
       with
      | Wire.Refused { code; error_class; _ } ->
          Alcotest.(check int) "overloaded exit code"
            (Error.exit_code (Error.Overloaded ""))
            code;
          Alcotest.(check string) "overloaded class" "overloaded" error_class
      | _ -> Alcotest.fail "over-capacity request was not refused");
      Mutex.lock gate_m;
      release := true;
      Condition.broadcast gate_c;
      Mutex.unlock gate_m;
      Thread.join blocker;
      (* with the slot free again the same request is admitted *)
      let o =
        expect_counted
          (call client
             (Wire.Count (Wire.params ~seed:1 ~db:Wire.Session (List.hd queries))))
      in
      Alcotest.(check bool) "admitted after release" true (o.Wire.seed = 1);
      (* a result-cache hit does no work, so it must bypass admission:
         refill the cache, block the slot again, and hit *)
      Mutex.lock gate_m;
      release := false;
      entered := false;
      Mutex.unlock gate_m;
      let blocker2 =
        Thread.create
          (fun () ->
            ignore
              (Scheduler.submit (Server.scheduler server) ~label:"blocker"
                 (fun _slice ->
                   Mutex.lock gate_m;
                   entered := true;
                   Condition.broadcast gate_c;
                   while not !release do
                     Condition.wait gate_c gate_m
                   done;
                   Mutex.unlock gate_m)))
          ()
      in
      Mutex.lock gate_m;
      while not !entered do
        Condition.wait gate_c gate_m
      done;
      Mutex.unlock gate_m;
      let hot =
        expect_counted
          (call client
             (Wire.Count (Wire.params ~seed:1 ~db:Wire.Session (List.hd queries))))
      in
      Alcotest.(check string) "cache hit served while saturated" "hit"
        hot.Wire.result_cache;
      Mutex.lock gate_m;
      release := true;
      Condition.broadcast gate_c;
      Mutex.unlock gate_m;
      Thread.join blocker2)

(* ---------- graceful-shutdown drain ---------- *)

let test_scheduler_drain () =
  let scheduler = Scheduler.create ~capacity:4 () in
  let gate_m = Mutex.create () and gate_c = Condition.create () in
  let release = ref false and entered = ref 0 in
  let workers =
    List.init 3 (fun _ ->
        Thread.create
          (fun () ->
            ignore
              (Scheduler.submit scheduler ~label:"w" (fun _slice ->
                   Mutex.lock gate_m;
                   incr entered;
                   Condition.broadcast gate_c;
                   while not !release do
                     Condition.wait gate_c gate_m
                   done;
                   Mutex.unlock gate_m)))
          ())
  in
  Mutex.lock gate_m;
  while !entered < 3 do
    Condition.wait gate_c gate_m
  done;
  Mutex.unlock gate_m;
  let drained = Atomic.make false in
  let drainer =
    Thread.create
      (fun () ->
        Scheduler.drain scheduler;
        Atomic.set drained true)
      ()
  in
  Thread.yield ();
  Alcotest.(check bool) "drain waits for in-flight work" false
    (Atomic.get drained);
  Mutex.lock gate_m;
  release := true;
  Condition.broadcast gate_c;
  Mutex.unlock gate_m;
  List.iter Thread.join workers;
  Thread.join drainer;
  Alcotest.(check bool) "drain returns once idle" true (Atomic.get drained);
  let s = Scheduler.stats scheduler in
  Alcotest.(check int) "all completed" 3 s.Scheduler.completed;
  Alcotest.(check int) "none in flight" 0 s.Scheduler.in_flight

(* ---------- service verbs and protocol resync ---------- *)

let test_verbs_and_resync () =
  with_client (fun _server client ->
      (match call client Wire.Ping with
      | Wire.Pong -> ()
      | _ -> Alcotest.fail "ping");
      (* USE of an unknown database is a typed refusal *)
      (match call client (Wire.Use "nope") with
      | Wire.Refused { error_class; _ } ->
          Alcotest.(check string) "unknown db is io" "io" error_class
      | _ -> Alcotest.fail "unknown USE accepted");
      (* COUNT without a session database is refused, not a crash *)
      (match
         call client (Wire.Count (Wire.params ~db:Wire.Session "ans(x) :- E(x,x)"))
       with
      | Wire.Refused { error_class; _ } ->
          Alcotest.(check string) "no session db is io" "io" error_class
      | _ -> Alcotest.fail "sessionless COUNT accepted");
      (* a garbage line gets a refusal and the stream stays usable *)
      output_string client.oc "this is not json\n";
      flush client.oc;
      (match Wire.read_json client.ic with
      | Wire.Msg j -> (
          match Wire.response_of_json j with
          | Ok (Wire.Refused { error_class; _ }) ->
              Alcotest.(check string) "garbage is parse" "parse" error_class
          | _ -> Alcotest.fail "garbage not refused")
      | _ -> Alcotest.fail "no response to garbage");
      (match call client (Wire.Use "g") with
      | Wire.Used { name; fingerprint; _ } ->
          Alcotest.(check string) "used g" "g" name;
          Alcotest.(check string) "fingerprint matches the structure"
            (Structure.fingerprint (db ()))
            fingerprint
      | _ -> Alcotest.fail "USE after garbage failed");
      (* a malformed query is a typed parse refusal over the wire *)
      match
        call client (Wire.Count (Wire.params ~db:Wire.Session "ans(x :- E("))
      with
      | Wire.Refused { code; error_class; _ } ->
          Alcotest.(check string) "query parse error class" "parse" error_class;
          Alcotest.(check int) "query parse exit code" 10 code
      | _ -> Alcotest.fail "malformed query accepted")

let test_inline_db () =
  with_client (fun _server client ->
      let inline = "universe 3\nE 0 1\nE 1 2\nE 2 0\n" in
      let o =
        expect_counted
          (call client
             (Wire.Count
                (Wire.params ~seed:9 ~method_:Api.Exact
                   ~db:(Wire.Inline inline) "ans(x,y) :- E(x,y)")))
      in
      Alcotest.(check bool) "exact" true o.Wire.exact;
      Alcotest.(check (float 0.0)) "count" 3.0 o.Wire.estimate;
      (* malformed inline text is a parse refusal *)
      match
        call client
          (Wire.Count (Wire.params ~db:(Wire.Inline "not a database") "q"))
      with
      | Wire.Refused { error_class; _ } ->
          Alcotest.(check string) "inline parse refusal" "parse" error_class
      | _ -> Alcotest.fail "garbled inline db accepted")

(* ---------- the LRU itself ---------- *)

let test_lru_eviction () =
  let lru = Cache.Lru.create ~capacity:2 () in
  Cache.Lru.add lru "a" 1;
  Cache.Lru.add lru "b" 2;
  ignore (Cache.Lru.find lru "a");
  Cache.Lru.add lru "c" 3;
  Alcotest.(check (option int)) "a kept (recently used)" (Some 1)
    (Cache.Lru.find lru "a");
  Alcotest.(check (option int)) "b evicted (least recently used)" None
    (Cache.Lru.find lru "b");
  Alcotest.(check (option int)) "c present" (Some 3) (Cache.Lru.find lru "c");
  let s = Cache.Lru.stats lru in
  Alcotest.(check int) "evictions" 1 s.Cache.evictions;
  Alcotest.(check int) "length" 2 s.Cache.length;
  (* capacity 0 disables caching entirely *)
  let off = Cache.Lru.create ~capacity:0 () in
  Cache.Lru.add off "a" 1;
  Alcotest.(check (option int)) "disabled cache stores nothing" None
    (Cache.Lru.find off "a")

let tests =
  [
    Alcotest.test_case "wire: requests round-trip" `Quick
      test_wire_request_roundtrip;
    Alcotest.test_case "wire: estimates are bit-exact" `Quick
      test_wire_estimate_bit_exact;
    Alcotest.test_case "wire: refusals carry exit codes" `Quick
      test_wire_refused_codes;
    Alcotest.test_case "lru: eviction order and disabling" `Quick
      test_lru_eviction;
    Alcotest.test_case "count = single-shot, bit for bit (jobs 1/2/4)" `Slow
      test_count_matches_single_shot;
    Alcotest.test_case "result cache: hit skips estimation" `Quick
      test_result_cache_hit_skips_work;
    Alcotest.test_case "cache counters consistent under concurrency" `Slow
      test_counters_consistent_under_concurrency;
    Alcotest.test_case "admission: overloaded refusal, never a hang" `Quick
      test_overloaded_refusal;
    Alcotest.test_case "scheduler: drain waits then returns" `Quick
      test_scheduler_drain;
    Alcotest.test_case "verbs, refusals and protocol resync" `Quick
      test_verbs_and_resync;
    Alcotest.test_case "inline databases" `Quick test_inline_db;
  ]
