(* The fault-tolerant service layer: wire-level chaos (every fault
   class of the proxy's vocabulary), the retrying client (bit-identical
   retried answers, zero duplicate budget spend, typed refusal of
   unsafe retries), deadline shedding, the HEALTH verb, the crash-safe
   catalog manifest, and stale-socket detection. *)

module Api = Approxcount.Api
module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Structure_io = Ac_relational.Structure_io
module Error = Ac_runtime.Error
module Chaos = Ac_runtime.Chaos
module Json = Ac_analysis.Json
module Wire = Ac_server.Wire
module Catalog = Ac_server.Catalog
module Scheduler = Ac_server.Scheduler
module Server = Ac_server.Server
module Client = Ac_server.Client
module Inflight = Ac_server.Inflight
module Manifest = Ac_server.Manifest
module Chaos_proxy = Ac_server.Chaos_proxy
module Live = Ac_live.Live
module Journal = Ac_live.Journal

(* the proxy and client run in this process: a peer hanging up
   mid-write must fail the write, not kill the test binary *)
let () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let db () =
  let rng = Random.State.make [| 2022 |] in
  Ac_workload.Graph.to_structure
    (Ac_workload.Graph.random_gnp ~rng 24 0.25)

let query = "ans(x) :- E(x,y), E(y,z)"

let single_shot ~seed query_text =
  let q = Result.get_ok (Ecq.parse_result query_text) in
  match Api.run (Api.request ~seed ~jobs:1 q (db ())) with
  | Ok r -> r
  | Error e -> Alcotest.failf "single-shot failed: %s" (Error.message e)

let with_server ?config f =
  let server = Server.create ?config () in
  ignore (Catalog.add (Server.catalog server) ~name:"g" (db ()));
  f server

(* in-process daemon over socketpair (no retry layer), as in
   test_server — for the server-side features *)
type raw = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  thread : Thread.t;
}

let connect_raw server =
  let client_fd, server_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let thread =
    Thread.create (fun () -> Server.serve_connection server server_fd) ()
  in
  {
    fd = client_fd;
    ic = Unix.in_channel_of_descr client_fd;
    oc = Unix.out_channel_of_descr client_fd;
    thread;
  }

let call_raw client req =
  Wire.write_json client.oc (Wire.request_to_json req);
  match Wire.read_json client.ic with
  | Wire.Msg j -> (
      match Wire.response_of_json j with
      | Ok r -> r
      | Error msg -> Alcotest.failf "bad response: %s" msg)
  | Wire.Eof -> Alcotest.fail "server hung up"
  | Wire.Bad msg -> Alcotest.failf "unparseable response: %s" msg

let disconnect_raw client =
  (try Unix.shutdown client.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  Thread.join client.thread;
  try Unix.close client.fd with Unix.Unix_error _ -> ()

let expect_counted = function
  | Wire.Counted o -> o
  | Wire.Refused { error_class; message; _ } ->
      Alcotest.failf "refused [%s]: %s" error_class message
  | _ -> Alcotest.fail "expected a COUNT response"

let tmp_path suffix =
  let f = Filename.temp_file "acq_fault" suffix in
  Sys.remove f;
  f

(* ---------- wire surface ---------- *)

let test_wire_health_and_ids () =
  (* HEALTH round-trips *)
  (match Wire.request_of_json (Wire.request_to_json Wire.Health) with
  | Ok Wire.Health -> ()
  | _ -> Alcotest.fail "HEALTH request did not round-trip");
  let h =
    {
      Wire.ready = true;
      live = true;
      draining = false;
      in_flight = 2;
      queue_capacity = 64;
      catalog_entries = 3;
      recovered = true;
      uptime_ms = 12.5;
    }
  in
  (match
     Wire.response_of_json (Wire.response_to_json (Wire.Health_reply h))
   with
  | Ok (Wire.Health_reply h') ->
      Alcotest.(check bool) "health round-trips" true (h = h')
  | _ -> Alcotest.fail "HEALTH reply did not round-trip");
  (* envelope ids survive encoding and are extractable *)
  let j = Wire.request_to_json ~id:"abc123" Wire.Ping in
  Alcotest.(check (option string)) "request id" (Some "abc123") (Wire.json_id j);
  let r = Wire.response_to_json ~id:"abc123" Wire.Pong in
  Alcotest.(check (option string)) "response id" (Some "abc123") (Wire.json_id r);
  Alcotest.(check (option string)) "absent id" None
    (Wire.json_id (Wire.request_to_json Wire.Ping));
  (* an id-free message still decodes (additive evolution) *)
  (match Wire.response_of_json r with
  | Ok Wire.Pong -> ()
  | _ -> Alcotest.fail "id-carrying response did not decode");
  (* deadline_ms rides the params *)
  let p = Wire.params ~deadline_ms:250 ~db:(Wire.Named "g") query in
  (match Wire.request_of_json (Wire.request_to_json (Wire.Count p)) with
  | Ok (Wire.Count p') ->
      Alcotest.(check (option int)) "deadline_ms" (Some 250) p'.Wire.deadline_ms
  | _ -> Alcotest.fail "deadline params did not round-trip");
  (* the idempotency contract *)
  List.iter
    (fun (req, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "idempotent %s" (Wire.verb_name req))
        expected (Wire.idempotent req))
    [
      (Wire.Ping, true);
      (Wire.Health, true);
      (Wire.Stats, true);
      (Wire.Use "g", true);
      (Wire.Count (Wire.params ~seed:1 ~db:(Wire.Named "g") query), true);
      (Wire.Count (Wire.params ~db:(Wire.Named "g") query), false);
      ( Wire.Sample
          { params = Wire.params ~db:(Wire.Named "g") query; draws = 1 },
        false );
    ]

(* ---------- deadline shedding and HEALTH ---------- *)

let test_deadline_shed () =
  with_server (fun server ->
      let client = connect_raw server in
      Fun.protect ~finally:(fun () -> disconnect_raw client) (fun () ->
          match
            call_raw client
              (Wire.Count
                 (Wire.params ~seed:5 ~deadline_ms:0 ~db:(Wire.Named "g") query))
          with
          | Wire.Refused { code; error_class; _ } ->
              Alcotest.(check int) "deadline exit code" 18 code;
              Alcotest.(check string) "deadline class" "deadline" error_class;
              let s = Scheduler.stats (Server.scheduler server) in
              Alcotest.(check int) "shed counted" 1 s.Scheduler.deadline_shed;
              Alcotest.(check int) "nothing admitted" 0 s.Scheduler.admitted
          | _ -> Alcotest.fail "expected a deadline refusal"))

let test_health_verb () =
  with_server (fun server ->
      let client = connect_raw server in
      Fun.protect ~finally:(fun () -> disconnect_raw client) (fun () ->
          match call_raw client Wire.Health with
          | Wire.Health_reply h ->
              Alcotest.(check bool) "ready" true h.Wire.ready;
              Alcotest.(check bool) "live" true h.Wire.live;
              Alcotest.(check bool) "not draining" false h.Wire.draining;
              Alcotest.(check int) "queue capacity" 64 h.Wire.queue_capacity;
              Alcotest.(check int) "catalog entries" 1 h.Wire.catalog_entries;
              Alcotest.(check bool) "not recovered" false h.Wire.recovered;
              Alcotest.(check bool) "uptime sane" true (h.Wire.uptime_ms >= 0.0)
          | _ -> Alcotest.fail "expected a HEALTH reply"))

(* ---------- single-flight dedupe ---------- *)

let test_inflight_single_flight () =
  let table : int Inflight.t = Inflight.create () in
  let gate_m = Mutex.create () and gate_c = Condition.create () in
  let release = ref false and computed = ref 0 in
  let leader_entered = Mutex.create () and entered_c = Condition.create () in
  let entered = ref false in
  let compute () =
    Mutex.lock leader_entered;
    entered := true;
    Condition.broadcast entered_c;
    Mutex.unlock leader_entered;
    Mutex.lock gate_m;
    while not !release do
      Condition.wait gate_c gate_m
    done;
    Mutex.unlock gate_m;
    incr computed;
    42
  in
  let leader = Thread.create (fun () -> Inflight.run table ~key:"k" compute) () in
  Mutex.lock leader_entered;
  while not !entered do
    Condition.wait entered_c leader_entered
  done;
  Mutex.unlock leader_entered;
  let follower =
    Thread.create
      (fun () ->
        let role, v = Inflight.run table ~key:"k" compute in
        Alcotest.(check bool) "joined as follower" true (role = Inflight.Follower);
        Alcotest.(check int) "leader's answer" 42 v)
      ()
  in
  (* let the follower reach the wait, then release the leader *)
  Thread.delay 0.05;
  Mutex.lock gate_m;
  release := true;
  Condition.broadcast gate_c;
  Mutex.unlock gate_m;
  Thread.join leader;
  Thread.join follower;
  Alcotest.(check int) "computed exactly once" 1 !computed;
  let led, followed, waiting = Inflight.stats table in
  Alcotest.(check int) "led" 1 led;
  Alcotest.(check int) "followed" 1 followed;
  Alcotest.(check int) "table empty" 0 waiting;
  (* a later identical request starts fresh (leads again) *)
  let role, v = Inflight.run table ~key:"k" (fun () -> 7) in
  Alcotest.(check bool) "fresh leader" true (role = Inflight.Leader);
  Alcotest.(check int) "fresh value" 7 v

(* ---------- manifest and recovery ---------- *)

let test_manifest_roundtrip () =
  let path = tmp_path ".manifest" in
  let entries =
    [
      (* a static entry (live fields at their defaults) and a mutated
         one (snapshot version, diverged rolling fingerprint, journal) *)
      {
        Manifest.name = "g";
        path = "/data/g.txt";
        fingerprint = "aa";
        db_version = 0;
        live_fingerprint = "aa";
        journal = None;
        partition = None;
      };
      {
        Manifest.name = "h";
        path = "/data/h.txt";
        fingerprint = "bb";
        db_version = 3;
        live_fingerprint = "cc";
        journal = Some "/data/h.journal";
        partition = Some "hash:0:2";
      };
    ]
  in
  (match Manifest.write ~path entries with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write failed: %s" (Error.message e));
  (match Manifest.read ~path with
  | Ok entries' ->
      Alcotest.(check bool) "entries round-trip" true (entries = entries')
  | Error e -> Alcotest.failf "read failed: %s" (Error.message e));
  (* garbage on disk is a typed parse error, not an exception *)
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc "#?!%&*~^\n");
  (match Manifest.read ~path with
  | Error (Error.Parse _) -> ()
  | Ok _ -> Alcotest.fail "garbage manifest read back"
  | Error e -> Alcotest.failf "wrong error class: %s" (Error.class_name e));
  Sys.remove path

(* The recovery scenario, parameterized over whether the catalog was
   mutated between load and crash. The expected version/fingerprint are
   {e captured from the daemon's responses}, never assumed static — so
   the same assertions hold for a pristine catalog (version 0, content
   fingerprint) and for one whose delta journal must be replayed on top
   of the snapshot. *)
let recovery_scenario ~mutate () =
  let db_file = tmp_path ".db" in
  let manifest = tmp_path ".manifest" in
  Structure_io.save db_file (db ());
  let config = { Server.default_config with manifest = Some manifest } in
  let seed = 907 in
  let count server =
    let client = connect_raw server in
    Fun.protect ~finally:(fun () -> disconnect_raw client) (fun () ->
        expect_counted
          (call_raw client
             (Wire.Count (Wire.params ~seed ~db:(Wire.Named "gg") query))))
  in
  (* first life: load from file (writes the manifest), maybe mutate
     (journal appends), answer *)
  let server1 = Server.create ~config () in
  (match Server.load_db server1 ~name:"gg" ~path:db_file with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "load_db failed: %s" (Error.message e));
  Alcotest.(check bool) "first life is not a recovery" false
    (Server.recovered server1);
  let expect_version, expect_fingerprint =
    if not mutate then
      let e =
        Option.get (Catalog.find (Server.catalog server1) "gg")
      in
      (e.Catalog.version, e.Catalog.fingerprint)
    else begin
      let client = connect_raw server1 in
      Fun.protect ~finally:(fun () -> disconnect_raw client) (fun () ->
          let mutated = function
            | Wire.Mutated { db_version; fingerprint; _ } ->
                (db_version, fingerprint)
            | Wire.Refused { error_class; message; _ } ->
                Alcotest.failf "mutation refused [%s]: %s" error_class message
            | _ -> Alcotest.fail "expected a MUTATE response"
          in
          ignore
            (mutated
               (call_raw client
                  (Wire.Insert
                     {
                       db = Wire.Named "gg";
                       rel = "E";
                       tuples = [ [| 23; 0 |]; [| 0; 23 |] ];
                       batch_id = Some "crash-b1";
                     })));
          mutated
            (call_raw client
               (Wire.Delete
                  {
                    db = Wire.Named "gg";
                    rel = "E";
                    tuples = [ [| 23; 0 |] ];
                    batch_id = Some "crash-b2";
                  })))
    end
  in
  let before = count server1 in
  (* second life: nothing but the manifest and the journal (the
     process "crashed") *)
  let server2 = Server.create ~config () in
  (match Server.recover server2 with
  | Ok [ "gg" ] -> ()
  | Ok names ->
      Alcotest.failf "recovered %d entries, wanted [gg]" (List.length names)
  | Error e -> Alcotest.failf "recover failed: %s" (Error.message e));
  Alcotest.(check bool) "recovered flag set" true (Server.recovered server2);
  let e2 = Option.get (Catalog.find (Server.catalog server2) "gg") in
  Alcotest.(check int) "recovered at the captured version" expect_version
    e2.Catalog.version;
  Alcotest.(check string) "recovered at the captured fingerprint"
    expect_fingerprint e2.Catalog.fingerprint;
  let after = count server2 in
  Alcotest.(check bool) "estimate survives the crash, bit for bit" true
    (Int64.bits_of_float before.Wire.estimate
    = Int64.bits_of_float after.Wire.estimate);
  (* a retried batch from before the crash still replays after it: the
     journal repopulated the dedupe table *)
  if mutate then begin
    let client = connect_raw server2 in
    Fun.protect ~finally:(fun () -> disconnect_raw client) (fun () ->
        match
          call_raw client
            (Wire.Delete
               {
                 db = Wire.Named "gg";
                 rel = "E";
                 tuples = [ [| 23; 0 |] ];
                 batch_id = Some "crash-b2";
               })
        with
        | Wire.Mutated { replayed; db_version; fingerprint; _ } ->
            Alcotest.(check bool) "pre-crash batch id replays" true replayed;
            Alcotest.(check int) "replay at the captured version"
              expect_version db_version;
            Alcotest.(check string) "replay at the captured fingerprint"
              expect_fingerprint fingerprint
        | _ -> Alcotest.fail "expected a MUTATE response")
  end;
  (* drift detection: regenerate the database, keep the old manifest *)
  let rng = Random.State.make [| 9 |] in
  Structure_io.save db_file
    (Ac_workload.Graph.to_structure (Ac_workload.Graph.random_gnp ~rng 10 0.5));
  let server3 = Server.create ~config () in
  (match Server.recover server3 with
  | Error (Error.Io { msg; _ }) ->
      Alcotest.(check bool) "mismatch names the fingerprints" true
        (String.length msg > 0
        && String.exists (fun _ -> true) msg
        &&
        let has sub s =
          let n = String.length sub and m = String.length s in
          let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        has "fingerprint mismatch" msg)
  | Ok _ -> Alcotest.fail "fingerprint drift went unnoticed"
  | Error e -> Alcotest.failf "wrong error class: %s" (Error.class_name e));
  Sys.remove db_file;
  Sys.remove manifest;
  try Sys.remove (manifest ^ ".gg.journal") with Sys_error _ -> ()

let test_recovery_bit_identical () = recovery_scenario ~mutate:false ()
let test_recovery_bit_identical_mutated () = recovery_scenario ~mutate:true ()

(* The crash window between a merge's manifest rewrite and its journal
   truncate: the journal still holds lines the fresh snapshot already
   contains. Recovery must not re-apply them, but it must keep their
   idempotency keys live — a client retrying a compacted batch after
   the crash is answered as a replay, not re-applied with a version
   bump. And a journal whose applied lines skip a sequence number means
   an acknowledged batch is gone: recovery must refuse, not silently
   serve a diverged database. *)
let test_recovery_compaction_window () =
  let db_file = tmp_path ".db" in
  let manifest = tmp_path ".manifest" in
  let snap_file = tmp_path ".snapshot" in
  let journal = manifest ^ ".gg.journal" in
  Structure_io.save db_file (db ());
  let config = { Server.default_config with manifest = Some manifest } in
  (* first life: load, apply one batch (journal line seq 1) *)
  let server1 = Server.create ~config () in
  (match Server.load_db server1 ~name:"gg" ~path:db_file with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "load_db failed: %s" (Error.message e));
  let client1 = connect_raw server1 in
  let v1, f1 =
    Fun.protect
      ~finally:(fun () -> disconnect_raw client1)
      (fun () ->
        match
          call_raw client1
            (Wire.Insert
               {
                 db = Wire.Named "gg";
                 rel = "E";
                 tuples = [ [| 3; 3 |] ];
                 batch_id = Some "cw-b1";
               })
        with
        | Wire.Mutated { db_version; fingerprint; _ } -> (db_version, fingerprint)
        | _ -> Alcotest.fail "expected a MUTATE response")
  in
  (* fabricate the crash residue: a snapshot capturing version v1 and a
     manifest pointing at it, with the compacted line still in the
     journal (the crash hit before the truncate) *)
  let live = Option.get (Catalog.live_find (Server.catalog server1) "gg") in
  let snap = Live.Db.snapshot live in
  Structure_io.save snap_file snap;
  (match
     Manifest.write ~path:manifest
       [
         {
           Manifest.name = "gg";
           path = snap_file;
           fingerprint = Structure.fingerprint snap;
           db_version = v1;
           live_fingerprint = f1;
           journal = Some journal;
           partition = None;
         };
       ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "manifest write failed: %s" (Error.message e));
  (* second life: the compacted line is skipped, its id kept live *)
  let server2 = Server.create ~config () in
  (match Server.recover server2 with
  | Ok [ "gg" ] -> ()
  | Ok names ->
      Alcotest.failf "recovered %d entries, wanted [gg]" (List.length names)
  | Error e -> Alcotest.failf "recover failed: %s" (Error.message e));
  let e2 = Option.get (Catalog.find (Server.catalog server2) "gg") in
  Alcotest.(check int) "recovered at the compacted version" v1
    e2.Catalog.version;
  Alcotest.(check string) "recovered at the compacted fingerprint" f1
    e2.Catalog.fingerprint;
  let client2 = connect_raw server2 in
  Fun.protect
    ~finally:(fun () -> disconnect_raw client2)
    (fun () ->
      match
        call_raw client2
          (Wire.Insert
             {
               db = Wire.Named "gg";
               rel = "E";
               tuples = [ [| 3; 3 |] ];
               batch_id = Some "cw-b1";
             })
      with
      | Wire.Mutated { replayed; db_version; fingerprint; _ } ->
          Alcotest.(check bool) "compacted batch id replays, not re-applies"
            true replayed;
          Alcotest.(check int) "replay at the journaled version" v1 db_version;
          Alcotest.(check string) "replay at the journaled fingerprint" f1
            fingerprint
      | _ -> Alcotest.fail "expected a MUTATE response");
  (* a restart that passes the same --load as the first boot must keep
     the recovered state — a fresh load here would reset the journal
     and silently discard the acknowledged batch *)
  (match Server.load_db server2 ~name:"gg" ~path:db_file with
  | Ok entry ->
      Alcotest.(check int) "re-load of a recovered name is a no-op" v1
        entry.Catalog.version
  | Error e -> Alcotest.failf "re-load refused: %s" (Error.message e));
  (match Journal.replay journal with
  | Ok lines ->
      Alcotest.(check bool) "…and the journal survives" true (lines <> [])
  | Error e -> Alcotest.failf "journal unreadable: %s" (Error.message e));
  (* a gap in the applied sequence (v1+2 without v1+1) refuses recovery *)
  (match
     Journal.append journal
       { Journal.seq = v1 + 2; id = None; fingerprint = "zz"; ops = [] }
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "journal append failed: %s" (Error.message e));
  let server3 = Server.create ~config () in
  (match Server.recover server3 with
  | Error (Error.Io { msg; _ }) ->
      let has sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "refusal names the journal gap" true
        (has "journal gap" msg)
  | Ok _ -> Alcotest.fail "a journal gap went unnoticed"
  | Error e -> Alcotest.failf "wrong error class: %s" (Error.class_name e));
  List.iter
    (fun f -> try Sys.remove f with Sys_error _ -> ())
    [ db_file; manifest; snap_file; journal ]

(* ---------- stale sockets ---------- *)

let test_stale_socket () =
  let path = tmp_path ".sock" in
  (* fabricate a crash residue: bind a socket, close the fd, keep the
     file *)
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX path);
  Unix.close dead;
  (match Server.listen_unix ~path () with
  | Error (Error.Io { msg; _ }) ->
      Alcotest.(check bool) "stale refusal mentions --force" true
        (String.length msg > 0
        &&
        let has sub s =
          let n = String.length sub and m = String.length s in
          let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        has "--force" msg && has "stale" msg)
  | Ok _ -> Alcotest.fail "bound over a stale socket without --force"
  | Error e -> Alcotest.failf "wrong error class: %s" (Error.class_name e));
  (* --force cleans up and binds *)
  (match Server.listen_unix ~force:true ~path () with
  | Ok fd -> (
      (* the socket is now live: a second daemon must be refused, with
         or without --force *)
      (match Server.listen_unix ~force:true ~path () with
      | Error (Error.Io _) -> ()
      | Ok _ -> Alcotest.fail "stole a live daemon's socket"
      | Error e -> Alcotest.failf "wrong error class: %s" (Error.class_name e));
      Unix.close fd)
  | Error e -> Alcotest.failf "--force failed: %s" (Error.message e));
  try Sys.remove path with Sys_error _ -> ()

(* ---------- the chaos proxy and the retrying client ---------- *)

let durable_config ?read_timeout_ms ?deadline_ms () =
  {
    Client.Durable.retries = 4;
    backoff_base_ms = 1.0;
    backoff_cap_ms = 10.0;
    read_timeout_ms;
    deadline_ms;
    seed = 11;
  }

let with_proxy ?(faults = []) ?(p_fault = 0.0) ?(chaos_seed = 1) f =
  with_server (fun server ->
      let path = tmp_path ".sock" in
      let plan = Chaos.Wire_plan.create ~faults ~p_fault ~seed:chaos_seed () in
      let proxy =
        Chaos_proxy.start ~path ~plan
          ~serve:(fun fd -> Server.serve_connection server fd)
          ()
      in
      Fun.protect
        ~finally:(fun () -> Chaos_proxy.stop proxy)
        (fun () -> f server proxy (Client.Unix_socket path)))

let count_durable client ~seed =
  match
    Client.Durable.call client
      (Wire.Count (Wire.params ~seed ~db:(Wire.Named "g") query))
  with
  | Ok (Wire.Counted o) -> o
  | Ok (Wire.Refused { error_class; message; _ }) ->
      Alcotest.failf "refused [%s]: %s" error_class message
  | Ok _ -> Alcotest.fail "expected a COUNT response"
  | Error e -> Alcotest.failf "durable call failed: %s" (Error.message e)

(* One fault class, one scenario: the faulted seeded COUNT must come
   back bit-identical to single-shot, with the expected number of
   retries, and the scheduler must have computed it exactly once
   (everything else was cache or dedupe — no double budget spend). *)
let check_fault_scenario ~name ~faults ?read_timeout_ms ~expect_retries () =
  with_proxy ~faults (fun server _proxy address ->
      let client =
        Client.Durable.create ~config:(durable_config ?read_timeout_ms ()) address
      in
      Fun.protect
        ~finally:(fun () -> Client.Durable.close client)
        (fun () ->
          let seed = 4242 in
          let expected = (single_shot ~seed query).Api.estimate in
          let o = count_durable client ~seed in
          Alcotest.(check bool)
            (Printf.sprintf "%s: bit-identical estimate" name)
            true
            (Int64.bits_of_float o.Wire.estimate = Int64.bits_of_float expected);
          Alcotest.(check int)
            (Printf.sprintf "%s: retries" name)
            expect_retries
            (Client.Durable.retries_total client);
          let s = Scheduler.stats (Server.scheduler server) in
          Alcotest.(check int)
            (Printf.sprintf "%s: computed exactly once" name)
            1 s.Scheduler.completed))

let test_fault_drop () =
  check_fault_scenario ~name:"drop"
    ~faults:[ (1, Chaos.Drop_connection) ]
    ~expect_retries:1 ()

let test_fault_truncate () =
  (* the partial frame parses as garbage (attempt 2 on the same, now
     dead, connection fails the write), so recovery takes 2 retries *)
  check_fault_scenario ~name:"truncate"
    ~faults:[ (1, Chaos.Truncate_frame 5) ]
    ~expect_retries:2 ()

let test_fault_delay () =
  (* Warm the result cache through a patient client first (frame 1,
     unfaulted), so the impatient client's timing depends only on the
     cache-hot path, not on how long the first computation takes. Its
     first attempt (frame 2) is delayed past the read timeout; the
     retry (frame 3) hits the cache and must answer identically. *)
  with_proxy
    ~faults:[ (2, Chaos.Delay_frame_ms 2000) ]
    (fun server _proxy address ->
      let seed = 4242 in
      let expected = (single_shot ~seed query).Api.estimate in
      let patient = Client.Durable.create ~config:(durable_config ()) address in
      let warm =
        Fun.protect
          ~finally:(fun () -> Client.Durable.close patient)
          (fun () -> count_durable patient ~seed)
      in
      Alcotest.(check bool) "delay: warm-up correct" true
        (Int64.bits_of_float warm.Wire.estimate = Int64.bits_of_float expected);
      let impatient =
        Client.Durable.create
          ~config:(durable_config ~read_timeout_ms:150 ())
          address
      in
      Fun.protect
        ~finally:(fun () -> Client.Durable.close impatient)
        (fun () ->
          let o = count_durable impatient ~seed in
          Alcotest.(check bool) "delay: bit-identical estimate" true
            (Int64.bits_of_float o.Wire.estimate = Int64.bits_of_float expected);
          Alcotest.(check int) "delay: one retry" 1
            (Client.Durable.retries_total impatient);
          let s = Scheduler.stats (Server.scheduler server) in
          Alcotest.(check int) "delay: computed exactly once" 1
            s.Scheduler.completed))

let test_fault_garbage_resync () =
  (* garbage keeps the connection open: the client resynchronises and
     retries on the same connection, and fresh connections still work *)
  with_proxy
    ~faults:[ (1, Chaos.Garbage_bytes 16) ]
    (fun server proxy address ->
      let client = Client.Durable.create ~config:(durable_config ()) address in
      Fun.protect
        ~finally:(fun () -> Client.Durable.close client)
        (fun () ->
          let seed = 4242 in
          let expected = (single_shot ~seed query).Api.estimate in
          let o = count_durable client ~seed in
          Alcotest.(check bool) "garbage: bit-identical" true
            (Int64.bits_of_float o.Wire.estimate = Int64.bits_of_float expected);
          Alcotest.(check int) "garbage: one retry" 1
            (Client.Durable.retries_total client);
          (* the fault really fired *)
          (match Chaos_proxy.plan proxy |> Chaos.Wire_plan.history with
          | (1, Chaos.Garbage_bytes 16) :: _ -> ()
          | _ -> Alcotest.fail "garbage fault did not fire");
          (* a brand-new plain connection finds a healthy daemon *)
          (match Client.connect address with
          | Ok c ->
              (match Client.call c Wire.Ping with
              | Ok Wire.Pong -> ()
              | _ -> Alcotest.fail "fresh connection could not ping");
              Client.close c
          | Error e ->
              Alcotest.failf "fresh connection failed: %s" (Error.message e));
          (* cache counters consistent: computed once, replayed once *)
          let s = Scheduler.stats (Server.scheduler server) in
          Alcotest.(check int) "garbage: computed exactly once" 1
            s.Scheduler.completed))

let test_fault_duplicate_id_discard () =
  with_proxy
    ~faults:[ (1, Chaos.Duplicate_frame) ]
    (fun _server _proxy address ->
      let client = Client.Durable.create ~config:(durable_config ()) address in
      Fun.protect
        ~finally:(fun () -> Client.Durable.close client)
        (fun () ->
          (* first answer arrives twice; the surplus frame sits in the
             stream until the next call, whose id mismatch discards it *)
          let o1 = count_durable client ~seed:1 in
          let o2 = count_durable client ~seed:2 in
          let e1 = (single_shot ~seed:1 query).Api.estimate in
          let e2 = (single_shot ~seed:2 query).Api.estimate in
          Alcotest.(check bool) "first answer right" true
            (Int64.bits_of_float o1.Wire.estimate = Int64.bits_of_float e1);
          Alcotest.(check bool)
            "second answer right despite the duplicate frame" true
            (Int64.bits_of_float o2.Wire.estimate = Int64.bits_of_float e2);
          Alcotest.(check int) "no retries needed" 0
            (Client.Durable.retries_total client)))

let test_retry_unsafe_unseeded () =
  with_proxy
    ~faults:[ (1, Chaos.Drop_connection) ]
    (fun _server _proxy address ->
      let client = Client.Durable.create ~config:(durable_config ()) address in
      Fun.protect
        ~finally:(fun () -> Client.Durable.close client)
        (fun () ->
          match
            Client.Durable.call client
              (Wire.Count (Wire.params ~db:(Wire.Named "g") query))
          with
          | Error (Error.Retry_unsafe { verb; _ } as e) ->
              Alcotest.(check string) "verb" "count" verb;
              Alcotest.(check string) "class" "retry" (Error.class_name e);
              Alcotest.(check int) "exit code" 19 (Error.exit_code e);
              Alcotest.(check int) "no retry happened" 0
                (Client.Durable.retries_total client)
          | Ok _ -> Alcotest.fail "an unseeded request was retried"
          | Error e -> Alcotest.failf "wrong error: %s" (Error.message e)))

let test_client_error_context () =
  (* connection refused: the address is in the error *)
  let missing = tmp_path ".sock" in
  (match Client.connect (Client.Unix_socket missing) with
  | Error (Error.Io { file; msg }) ->
      Alcotest.(check string) "address in the error" ("unix:" ^ missing) file;
      Alcotest.(check bool) "verb in the message" true
        (String.length msg > 8 && String.sub msg 0 8 = "connect:")
  | Ok _ -> Alcotest.fail "connected to nothing"
  | Error e -> Alcotest.failf "wrong error class: %s" (Error.class_name e));
  (* server hangs up mid-session: verb and address still identified *)
  with_proxy (fun _server proxy address ->
      match Client.connect address with
      | Error e -> Alcotest.failf "connect failed: %s" (Error.message e)
      | Ok c ->
          Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
              Chaos_proxy.stop proxy;
              match Client.call c Wire.Ping with
              | Error (Error.Io { file; msg }) ->
                  Alcotest.(check string) "address" ("unix:" ^ Chaos_proxy.path proxy)
                    file;
                  Alcotest.(check bool) "verb" true
                    (String.length msg > 5 && String.sub msg 0 5 = "ping:")
              | Ok _ -> Alcotest.fail "call succeeded on a dead proxy"
              | Error e ->
                  Alcotest.failf "wrong error class: %s" (Error.class_name e)))

let tests =
  [
    Alcotest.test_case "wire: HEALTH, ids, deadline_ms, idempotency" `Quick
      test_wire_health_and_ids;
    Alcotest.test_case "deadline: shed at admission (exit 18)" `Quick
      test_deadline_shed;
    Alcotest.test_case "health: readiness, queue, recovery flag" `Quick
      test_health_verb;
    Alcotest.test_case "inflight: single-flight dedupe" `Quick
      test_inflight_single_flight;
    Alcotest.test_case "manifest: atomic round-trip, typed failures" `Quick
      test_manifest_roundtrip;
    Alcotest.test_case "recovery: bit-identical across a crash" `Slow
      test_recovery_bit_identical;
    Alcotest.test_case "recovery: journal replayed for a mutated catalog"
      `Slow test_recovery_bit_identical_mutated;
    Alcotest.test_case "recovery: compaction crash window, journal gaps"
      `Slow test_recovery_compaction_window;
    Alcotest.test_case "socket: stale refused, --force, live protected" `Quick
      test_stale_socket;
    Alcotest.test_case "chaos: drop — retried, computed once" `Slow
      test_fault_drop;
    Alcotest.test_case "chaos: truncate — retried, computed once" `Slow
      test_fault_truncate;
    Alcotest.test_case "chaos: delay — timeout, retried, computed once" `Slow
      test_fault_delay;
    Alcotest.test_case "chaos: garbage — resync on the same connection" `Slow
      test_fault_garbage_resync;
    Alcotest.test_case "chaos: duplicate — stale frames discarded by id" `Slow
      test_fault_duplicate_id_discard;
    Alcotest.test_case "retry: unseeded refused (exit 19)" `Quick
      test_retry_unsafe_unseeded;
    Alcotest.test_case "client: errors name address and verb" `Quick
      test_client_error_context;
  ]
