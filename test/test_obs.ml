(* The observability layer (lib/obs) and its surfaces.

   The two load-bearing contracts:

   1. Bit-transparency — tracing and metrics never touch an RNG or the
      control flow of an estimator, so traced and untraced runs of a
      seeded request produce bit-identical estimates at any jobs count.
   2. Stability — metric names, histogram bucket bounds and the
      Prometheus exposition are a documented contract
      (docs/observability.md); the goldens here pin them. *)

module Trace = Ac_obs.Trace
module Metrics = Ac_obs.Metrics
module Budget = Ac_runtime.Budget
module Error = Ac_runtime.Error
module Api = Approxcount.Api
module Colour_oracle = Approxcount.Colour_oracle
module Ecq = Ac_query.Ecq
module Graph = Ac_workload.Graph
module Json = Ac_analysis.Json
module Wire = Ac_server.Wire
module Server = Ac_server.Server
module Catalog = Ac_server.Catalog

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let cq = Ecq.parse "ans(x, y) :- E(x, y), E(y, z)"
let diseq = Ecq.parse "ans(x, y) :- E(x, y), x != y"

let graph_db ~seed n p =
  Graph.to_structure (Graph.random_gnp ~rng:(Random.State.make [| seed |]) n p)

(* ------------------------------------------------------------------ *)
(* Bit-transparency: tracing off vs on, jobs 1 and 4                  *)

let run_count ?trace ~method_ ~jobs q db =
  match
    Api.run (Api.request ~eps:0.5 ~delta:0.25 ~method_ ~seed:2026 ~jobs ?trace q db)
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "count failed: %s" (Error.message e)

let test_trace_bit_transparent () =
  let db = graph_db ~seed:8 16 0.3 in
  List.iter
    (fun (name, method_, q) ->
      List.iter
        (fun jobs ->
          let plain = run_count ~method_ ~jobs q db in
          let tr = Trace.create () in
          let traced = run_count ~trace:tr ~method_ ~jobs q db in
          Alcotest.(check bool)
            (Printf.sprintf "%s jobs=%d bits identical" name jobs)
            true
            (Int64.bits_of_float plain.Api.estimate
            = Int64.bits_of_float traced.Api.estimate);
          Alcotest.(check bool)
            (Printf.sprintf "%s jobs=%d recorded spans" name jobs)
            true
            (Trace.span_count tr > 0);
          match traced.Api.telemetry.Api.trace with
          | None -> Alcotest.fail "traced run lost its summary"
          | Some s ->
              Alcotest.(check int)
                (Printf.sprintf "%s jobs=%d summary spans" name jobs)
                (Trace.span_count tr) s.Trace.spans)
        [ 1; 4 ])
    [
      ("auto", Api.Auto, diseq);
      ("fptras", Api.Fptras Colour_oracle.Tree_dp, diseq);
      ("fpras", Api.Fpras, cq);
    ]

let test_sample_trace_bit_transparent () =
  let db = graph_db ~seed:3 12 0.4 in
  let draw ?trace jobs =
    match
      Api.sample ~draws:4
        (Api.request ~eps:0.5 ~delta:0.3
           ~method_:(Api.Fptras Colour_oracle.Tree_dp)
           ~seed:77 ~jobs ?trace diseq db)
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "sample error: %s" (Error.message e)
  in
  List.iter
    (fun jobs ->
      let plain = draw jobs in
      let traced = draw ~trace:(Trace.create ()) jobs in
      Alcotest.(check bool)
        (Printf.sprintf "draws identical jobs=%d" jobs)
        true
        (plain.Api.draws = traced.Api.draws);
      Alcotest.(check bool) "sample summary present" true
        (traced.Api.telemetry.Api.trace <> None))
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Span-tree well-formedness                                          *)

let test_span_tree_well_formed () =
  let db = graph_db ~seed:8 16 0.3 in
  let tr = Trace.create () in
  ignore (run_count ~trace:tr ~method_:Api.Auto ~jobs:4 diseq db);
  let records = Trace.records tr in
  Alcotest.(check bool) "nonempty" true (records <> []);
  let by_id = Hashtbl.create 64 in
  List.iter (fun (r : Trace.record) -> Hashtbl.replace by_id r.Trace.id r) records;
  List.iter
    (fun (r : Trace.record) ->
      Alcotest.(check bool)
        (Printf.sprintf "span %d interval ordered" r.Trace.id)
        true
        (r.Trace.stop_ms >= r.Trace.start_ms);
      if r.Trace.parent <> -1 then begin
        match Hashtbl.find_opt by_id r.Trace.parent with
        | None -> Alcotest.failf "span %d has unknown parent" r.Trace.id
        | Some (p : Trace.record) ->
            Alcotest.(check bool)
              (Printf.sprintf "span %d created after parent" r.Trace.id)
              true (p.Trace.id < r.Trace.id);
            Alcotest.(check bool)
              (Printf.sprintf "span %d inside parent interval" r.Trace.id)
              true
              (r.Trace.start_ms >= p.Trace.start_ms
              && r.Trace.stop_ms <= p.Trace.stop_ms)
      end)
    records;
  let names = List.map (fun (r : Trace.record) -> r.Trace.name) records in
  Alcotest.(check bool) "root api:count present" true
    (List.mem "api:count" names);
  Alcotest.(check bool) "analyze present" true (List.mem "analyze" names);
  Alcotest.(check bool) "a rung span present" true
    (List.exists
       (fun n -> String.length n > 5 && String.sub n 0 5 = "rung:")
       names)

let test_summary_tick_attribution () =
  let db = graph_db ~seed:8 16 0.3 in
  let tr = Trace.create () in
  let resp = run_count ~trace:tr ~method_:Api.Auto ~jobs:1 diseq db in
  let s = Trace.summary tr in
  Alcotest.(check int) "summary counts every span" (Trace.span_count tr)
    (List.fold_left (fun acc a -> acc + a.Trace.count) 0 s.Trace.aggs);
  let root =
    List.find (fun a -> a.Trace.agg_name = "api:count") s.Trace.aggs
  in
  (* the root is stopped with the final budget tick count: whole-run
     attribution *)
  Alcotest.(check int) "root carries the run's ticks"
    resp.Api.telemetry.Api.ticks root.Trace.agg_ticks;
  let sorted = List.map (fun a -> a.Trace.agg_name) s.Trace.aggs in
  Alcotest.(check bool) "aggs sorted by name" true
    (sorted = List.sort compare sorted)

let test_trace_exports () =
  let tr = Trace.create () in
  let root = Trace.root tr "outer" ~tags:[ ("k", "v") ] in
  let child = Trace.child (Some root) "inner" in
  Trace.stop ~ticks:3 child;
  Trace.stop (Some root);
  let jsonl = Trace.to_jsonl tr in
  let lines = String.split_on_char '\n' (String.trim jsonl) in
  Alcotest.(check int) "one jsonl line per span" (Trace.span_count tr)
    (List.length lines);
  let chrome = Trace.to_chrome tr in
  Alcotest.(check bool) "chrome export wraps traceEvents" true
    (String.length chrome > 0
    && chrome.[0] = '{'
    && contains ~needle:"\"traceEvents\"" chrome);
  Alcotest.(check bool) "chrome uses complete events" true
    (contains ~needle:"\"ph\"" chrome)

let test_trace_capacity_bound () =
  let tr = Trace.create ~max_spans:4 () in
  let root = Trace.root tr "r" in
  for _ = 1 to 10 do
    Trace.stop (Trace.child (Some root) "c")
  done;
  Trace.stop (Some root);
  Alcotest.(check int) "capacity respected" 4 (Trace.span_count tr);
  Alcotest.(check int) "overflow counted" 7 (Trace.dropped tr)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                   *)

let test_metrics_identity_and_label_order () =
  let reg = Metrics.create () in
  let a = Metrics.counter reg "c" ~labels:[ ("x", "1"); ("y", "2") ] in
  let b = Metrics.counter reg "c" ~labels:[ ("y", "2"); ("x", "1") ] in
  Metrics.incr a;
  Metrics.incr b;
  Alcotest.(check int) "label order is normalised away" 2
    (Metrics.counter_value a);
  let other = Metrics.counter reg "c" ~labels:[ ("x", "9"); ("y", "2") ] in
  Alcotest.(check int) "distinct labels, distinct series" 0
    (Metrics.counter_value other);
  (* same (name, labels) series under a different kind is a bug *)
  match Metrics.gauge reg "c" ~labels:[ ("x", "1"); ("y", "2") ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch must raise"

let test_metrics_kill_switch () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "c" in
  let h = Metrics.histogram reg "h" in
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled true)
    (fun () ->
      Metrics.set_enabled false;
      Alcotest.(check bool) "switch reads back" false (Metrics.enabled ());
      Metrics.incr c;
      Metrics.add c 10;
      Metrics.observe h 1.0);
  Alcotest.(check int) "disabled counter froze" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Alcotest.(check int) "re-enabled counter moves" 1 (Metrics.counter_value c);
  match List.find (fun m -> m.Metrics.metric_name = "h") (Metrics.snapshot reg) with
  | { Metrics.value = Metrics.Histogram hv; _ } ->
      Alcotest.(check int) "disabled histogram froze" 0 hv.Metrics.count
  | _ -> Alcotest.fail "histogram missing from snapshot"

(* the reference bucketing rule: smallest bound >= x, +Inf past the end *)
let expected_bucket x =
  let n = Array.length Metrics.bucket_bounds in
  let rec go i =
    if i >= n then n
    else if x <= Metrics.bucket_bounds.(i) then i
    else go (i + 1)
  in
  go 0

let prop_histogram_invariants =
  QCheck2.Test.make ~count:200 ~name:"histogram buckets partition the line"
    QCheck2.Gen.(list_size (int_range 0 60) (float_range (-2.0) 3e6))
    (fun xs ->
      let reg = Metrics.create () in
      let h = Metrics.histogram reg "h" in
      List.iter (Metrics.observe h) xs;
      match Metrics.snapshot reg with
      | [ { Metrics.value = Metrics.Histogram hv; _ } ] ->
          let n = Array.length Metrics.bucket_bounds in
          let expected = Array.make (n + 1) 0 in
          List.iter
            (fun x ->
              let i = expected_bucket x in
              expected.(i) <- expected.(i) + 1)
            xs;
          hv.Metrics.counts = expected
          && hv.Metrics.count = List.length xs
          && Array.fold_left ( + ) 0 hv.Metrics.counts = List.length xs
          && Float.abs (hv.Metrics.sum -. List.fold_left ( +. ) 0.0 xs)
             <= 1e-6 *. Float.max 1.0 (Float.abs hv.Metrics.sum)
      | _ -> false)

let test_bucket_bounds_contract () =
  let b = Metrics.bucket_bounds in
  Alcotest.(check int) "31 bounds (2^-10 .. 2^20)" 31 (Array.length b);
  Alcotest.(check (float 0.0)) "first bound" (1.0 /. 1024.0) b.(0);
  Alcotest.(check (float 0.0)) "last bound" 1048576.0 b.(Array.length b - 1);
  for i = 1 to Array.length b - 1 do
    Alcotest.(check bool) "strictly increasing" true (b.(i) > b.(i - 1))
  done

(* ------------------------------------------------------------------ *)
(* Prometheus exposition golden                                       *)

let test_prometheus_golden () =
  let reg = Metrics.create () in
  let c =
    Metrics.counter reg "acq_demo_total" ~help:"Demo requests"
      ~labels:[ ("verb", "count") ]
  in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.incr c;
  Metrics.set (Metrics.gauge reg "acq_demo_depth" ~help:"Demo depth") 7;
  Alcotest.(check string) "exposition is stable"
    "# HELP acq_demo_depth Demo depth\n\
     # TYPE acq_demo_depth gauge\n\
     acq_demo_depth 7\n\
     # HELP acq_demo_total Demo requests\n\
     # TYPE acq_demo_total counter\n\
     acq_demo_total{verb=\"count\"} 3\n"
    (Metrics.to_prometheus reg)

let test_prometheus_histogram_lines () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "acq_demo_ms" in
  Metrics.observe h 0.5;
  Metrics.observe h 3.0;
  let text = Metrics.to_prometheus reg in
  let has line =
    List.mem line (String.split_on_char '\n' text)
  in
  Alcotest.(check bool) "le=0.5 cumulative" true
    (has "acq_demo_ms_bucket{le=\"0.5\"} 1");
  Alcotest.(check bool) "le=4 cumulative" true
    (has "acq_demo_ms_bucket{le=\"4\"} 2");
  Alcotest.(check bool) "+Inf closes the family" true
    (has "acq_demo_ms_bucket{le=\"+Inf\"} 2");
  Alcotest.(check bool) "sum line" true (has "acq_demo_ms_sum 3.5");
  Alcotest.(check bool) "count line" true (has "acq_demo_ms_count 2")

(* ------------------------------------------------------------------ *)
(* Wire: METRICS verb, telemetry trace, version negotiation           *)

let test_wire_metrics_roundtrip () =
  List.iter
    (fun format ->
      let req = Wire.Metrics_req { format } in
      (match Wire.request_of_json (Wire.request_to_json req) with
      | Ok r ->
          Alcotest.(check bool)
            (Wire.metrics_format_name format ^ " request round-trips")
            true (r = req)
      | Error msg -> Alcotest.failf "request: %s" msg);
      let reg = Metrics.create () in
      Metrics.incr (Metrics.counter reg "acq_demo_total" ~labels:[ ("verb", "ping") ]);
      let resp =
        Wire.Metrics_reply { format; payload = Wire.metrics_payload ~format reg }
      in
      match Wire.response_of_json (Wire.response_to_json resp) with
      | Ok r ->
          Alcotest.(check bool)
            (Wire.metrics_format_name format ^ " response round-trips")
            true (r = resp)
      | Error msg -> Alcotest.failf "response: %s" msg)
    [ Wire.Metrics_json; Wire.Metrics_prometheus ]

let test_wire_version_negotiation () =
  (* every encoded message declares the protocol version *)
  (match Wire.request_to_json Wire.Ping with
  | Json.Obj fields ->
      Alcotest.(check bool) "version declared" true
        (List.assoc_opt "version" fields = Some (Json.Int Wire.protocol_version))
  | _ -> Alcotest.fail "ping must encode to an object");
  (* absent version means version 1 (pre-versioning peers keep working) *)
  (match Wire.request_of_json (Json.Obj [ ("verb", Json.String "ping") ]) with
  | Ok Wire.Ping -> ()
  | _ -> Alcotest.fail "absent version must be accepted");
  (* unknown fields are ignored: additive evolution *)
  (match
     Wire.request_of_json
       (Json.Obj
          [
            ("verb", Json.String "ping");
            ("version", Json.Int 1);
            ("x_future", Json.String "ignored");
          ])
   with
  | Ok Wire.Ping -> ()
  | _ -> Alcotest.fail "unknown fields must be ignored");
  (* a version we do not speak is refused, not guessed at *)
  match
    Wire.request_of_json
      (Json.Obj [ ("verb", Json.String "ping"); ("version", Json.Int 99) ])
  with
  | Error msg ->
      Alcotest.(check bool) "error names the version" true
        (contains ~needle:"99" msg)
  | Ok _ -> Alcotest.fail "version 99 must be refused"

(* ------------------------------------------------------------------ *)
(* A live daemon: METRICS verb, traced requests, request counters     *)

let with_client f =
  let server = Server.create () in
  ignore (Catalog.add (Server.catalog server) ~name:"g" (graph_db ~seed:8 16 0.3));
  let client_fd, server_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let thread =
    Thread.create (fun () -> Server.serve_connection server server_fd) ()
  in
  let ic = Unix.in_channel_of_descr client_fd
  and oc = Unix.out_channel_of_descr client_fd in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.shutdown client_fd Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ());
      Thread.join thread;
      try Unix.close client_fd with Unix.Unix_error _ -> ())
    (fun () -> f ic oc)

let call ic oc req =
  Wire.write_json oc (Wire.request_to_json req);
  match Wire.read_json ic with
  | Wire.Msg j -> (
      match Wire.response_of_json j with
      | Ok r -> r
      | Error msg -> Alcotest.failf "bad response: %s" msg)
  | Wire.Eof -> Alcotest.fail "server hung up"
  | Wire.Bad msg -> Alcotest.failf "unparseable response: %s" msg

let query = "ans(x,y) :- E(x,y), x != y"

let test_server_metrics_verb () =
  with_client (fun ic oc ->
      (match call ic oc (Wire.Use "g") with
      | Wire.Used _ -> ()
      | _ -> Alcotest.fail "USE failed");
      (match
         call ic oc
           (Wire.Count (Wire.params ~eps:0.5 ~delta:0.25 ~seed:5 ~db:Wire.Session query))
       with
      | Wire.Counted _ -> ()
      | _ -> Alcotest.fail "COUNT failed");
      (match call ic oc (Wire.Metrics_req { format = Wire.Metrics_json }) with
      | Wire.Metrics_reply { format = Wire.Metrics_json; payload = Json.List series } ->
          let count_series =
            List.exists
              (fun s ->
                match (Json.mem "name" s, Json.mem "labels" s) with
                | Some (Json.String "acq_requests_total"), Some labels ->
                    Json.mem "verb" labels = Some (Json.String "count")
                | _ -> false)
              series
          in
          Alcotest.(check bool) "acq_requests_total{verb=count} served" true
            count_series
      | _ -> Alcotest.fail "METRICS (json) failed");
      match call ic oc (Wire.Metrics_req { format = Wire.Metrics_prometheus }) with
      | Wire.Metrics_reply { format = Wire.Metrics_prometheus; payload = Json.String text } ->
          Alcotest.(check bool) "exposition mentions acq_requests_total" true
            (contains ~needle:"acq_requests_total" text)
      | _ -> Alcotest.fail "METRICS (prometheus) failed")

let test_server_traced_count () =
  with_client (fun ic oc ->
      (match call ic oc (Wire.Use "g") with
      | Wire.Used _ -> ()
      | _ -> Alcotest.fail "USE failed");
      let params =
        Wire.params ~eps:0.5 ~delta:0.25 ~seed:11 ~trace:true ~db:Wire.Session
          query
      in
      let plain =
        Wire.params ~eps:0.5 ~delta:0.25 ~seed:11 ~db:Wire.Session query
      in
      let cold =
        match call ic oc (Wire.Count params) with
        | Wire.Counted o -> o
        | _ -> Alcotest.fail "traced COUNT failed"
      in
      (match cold.Wire.trace with
      | Some s -> Alcotest.(check bool) "spans crossed the wire" true (s.Trace.spans > 0)
      | None -> Alcotest.fail "traced request returned no summary");
      (* an untraced request replaying the cached result: same bits, no
         trace — the cache replay did no work worth attributing *)
      match call ic oc (Wire.Count plain) with
      | Wire.Counted hot ->
          Alcotest.(check bool) "replay bits identical" true
            (Int64.bits_of_float hot.Wire.estimate
            = Int64.bits_of_float cold.Wire.estimate);
          Alcotest.(check bool) "replay carries no trace" true
            (hot.Wire.trace = None)
      | _ -> Alcotest.fail "replay COUNT failed")

let test_request_counters_move () =
  let before =
    Metrics.counter_value
      (Metrics.counter Metrics.global "acq_requests_total"
         ~labels:[ ("verb", "ping"); ("status", "0") ])
  in
  with_client (fun ic oc ->
      match call ic oc Wire.Ping with
      | Wire.Pong -> ()
      | _ -> Alcotest.fail "PING failed");
  let after =
    Metrics.counter_value
      (Metrics.counter Metrics.global "acq_requests_total"
         ~labels:[ ("verb", "ping"); ("status", "0") ])
  in
  Alcotest.(check bool) "ping incremented its series" true (after > before)

let tests =
  [
    Alcotest.test_case "traced runs are bit-identical" `Quick
      test_trace_bit_transparent;
    Alcotest.test_case "traced sampling is bit-identical" `Quick
      test_sample_trace_bit_transparent;
    Alcotest.test_case "span tree is well-formed" `Quick
      test_span_tree_well_formed;
    Alcotest.test_case "summary attributes ticks" `Quick
      test_summary_tick_attribution;
    Alcotest.test_case "jsonl and chrome exports" `Quick test_trace_exports;
    Alcotest.test_case "span capacity bounds memory" `Quick
      test_trace_capacity_bound;
    Alcotest.test_case "registry identity and label order" `Quick
      test_metrics_identity_and_label_order;
    Alcotest.test_case "kill switch freezes updates" `Quick
      test_metrics_kill_switch;
    QCheck_alcotest.to_alcotest prop_histogram_invariants;
    Alcotest.test_case "bucket bounds contract" `Quick
      test_bucket_bounds_contract;
    Alcotest.test_case "prometheus exposition golden" `Quick
      test_prometheus_golden;
    Alcotest.test_case "prometheus histogram lines" `Quick
      test_prometheus_histogram_lines;
    Alcotest.test_case "METRICS verb round-trips" `Quick
      test_wire_metrics_roundtrip;
    Alcotest.test_case "version negotiation" `Quick
      test_wire_version_negotiation;
    Alcotest.test_case "live METRICS verb" `Quick test_server_metrics_verb;
    Alcotest.test_case "traced COUNT over the wire" `Quick
      test_server_traced_count;
    Alcotest.test_case "request counters move" `Quick
      test_request_counters_move;
  ]
