(* Cross-cutting coverage: the unaligned (permutation) oracle path of
   Lemma 22 end-to-end, induced substructures, and small invariants. *)

module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Partite = Ac_dlm.Partite
module Colour_oracle = Approxcount.Colour_oracle
module Exact = Approxcount.Exact

(* Lemma 22's permutation step end-to-end: present the answer hypergraph
   oracle with GENERAL (class-mixed) parts and check that
   [general_of_aligned] agrees with ground truth under every class
   shuffle. *)
let test_unaligned_oracle_path () =
  let q = Ac_workload.Query_families.star_distinct 2 in
  let db =
    Structure.of_facts ~universe_size:4
      [ ("E", [| 0; 1 |]); ("E", [| 0; 2 |]); ("E", [| 3; 2 |]) ]
  in
  let oracle =
    Colour_oracle.create
      ~rng:(Random.State.make [| 1 |])
      ~rounds:64 ~engine:Colour_oracle.Tree_dp q db
  in
  let space = Colour_oracle.space oracle in
  let aligned = Colour_oracle.aligned_oracle oracle in
  let answers = Exact.answers q db in
  Alcotest.(check bool) "has answers" true (answers <> []);
  (* a genuine answer (a, b): presented with the classes swapped inside
     the general parts, the permutation reduction must still find it *)
  let a, b =
    match answers with t :: _ -> (t.(0), t.(1)) | [] -> assert false
  in
  let general_hit = [| [ (1, b) ]; [ (0, a) ] |] in
  Alcotest.(check bool) "swapped general parts found" false
    (Partite.general_of_aligned space aligned general_hit);
  (* a non-answer: (x, x) pairs are excluded by the disequality *)
  let general_miss = [| [ (0, a); (1, a) ]; [ (0, a); (1, a) ] |] in
  let expected_miss =
    not (List.exists (fun t -> t.(0) = a && t.(1) = a) answers)
  in
  Alcotest.(check bool) "diagonal box" expected_miss
    (Partite.general_of_aligned space aligned general_miss)

let test_structure_induced () =
  let s =
    Structure.of_facts ~universe_size:5
      [ ("E", [| 0; 1 |]); ("E", [| 1; 4 |]); ("P", [| 4 |]) ]
  in
  let sub = Structure.induced s [ 1; 4 ] in
  Alcotest.(check int) "universe" 2 (Structure.universe_size sub);
  (* 1 → 0, 4 → 1 *)
  Alcotest.(check bool) "kept edge" true (Structure.holds sub "E" [| 0; 1 |]);
  Alcotest.(check bool) "dropped edge" false (Structure.holds sub "E" [| 1; 0 |]);
  Alcotest.(check bool) "kept unary" true (Structure.holds sub "P" [| 1 |]);
  (* relations survive as declarations even when emptied *)
  Alcotest.(check bool) "symbols preserved" true
    (Structure.symbols sub = [ "E"; "P" ]);
  match Structure.induced s [ 0; 9 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range element should raise"

let prop_labelings_cardinality =
  QCheck2.Test.make ~count:40 ~name:"|labelings| = alphabet^size"
    QCheck2.Gen.(pair (int_range 1 4) (int_range 1 3))
    (fun (n, alphabet) ->
      List.for_all
        (fun shape ->
          let count = List.length (Ac_automata.Ltree.labelings ~alphabet shape) in
          let expected =
            int_of_float (float_of_int alphabet ** float_of_int n)
          in
          count = expected)
        (Ac_automata.Ltree.shapes_with_size n))

(* Planner dispatch matches exact counts on random small queries (the
   chosen scheme must be a correct counter whatever it is). *)
let prop_planner_correct =
  QCheck2.Test.make ~count:25 ~name:"planner result close to exact"
    QCheck2.Gen.(pair (Gen.ecq_with_db ~allow_neg:true ~allow_diseq:true) (int_range 0 10000))
    (fun ((q, db), seed) ->
      let exact = float_of_int (Exact.by_join_projection q db) in
      let v, _ =
        Approxcount.Planner.count
          ~rng:(Random.State.make [| seed |])
          ~eps:0.3 ~delta:0.2 q db
      in
      if exact = 0.0 then v < 1.0
      else Float.abs (v -. exact) /. exact <= 0.6)

let test_hypercycle_widths () =
  (* the arity-3 hypercycle family: every bag coverable by few ternary
     edges; fhw strictly below treewidth + 1 *)
  let h = Ac_hypergraph.Hypergraph.hypercycle 3 in
  let tw = fst (Ac_hypergraph.Tree_decomposition.treewidth_exact h) in
  let fhw = fst (Ac_hypergraph.Widths.fhw_exact h) in
  Alcotest.(check bool) "fhw below tw+1" true (fhw < float_of_int (tw + 1));
  Alcotest.(check bool) "fhw at least 1" true (fhw >= 1.0)

let tests =
  [
    Alcotest.test_case "unaligned oracle path" `Quick test_unaligned_oracle_path;
    Alcotest.test_case "structure induced" `Quick test_structure_induced;
    Alcotest.test_case "hypercycle widths" `Quick test_hypercycle_widths;
    QCheck_alcotest.to_alcotest prop_labelings_cardinality;
    QCheck_alcotest.to_alcotest prop_planner_correct;
  ]
