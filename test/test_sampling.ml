module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Sampling = Approxcount.Sampling
module Exact = Approxcount.Exact

let prop_sample_is_answer =
  QCheck2.Test.make ~count:30 ~name:"JVV sample is a genuine answer"
    QCheck2.Gen.(pair (Gen.ecq_with_db ~allow_neg:true ~allow_diseq:true) (int_range 0 10000))
    (fun ((q, db), seed) ->
      let rng = Random.State.make [| seed |] in
      match Sampling.sample ~rng ~rounds:48 ~eps:0.3 ~delta:0.2 q db with
      | None -> true (* may fail to sample; validity is what we check *)
      | Some tau -> Exact.is_answer q db tau)

let prop_sample_none_iff_empty =
  QCheck2.Test.make ~count:30 ~name:"JVV sample exists when answers exist"
    QCheck2.Gen.(pair (Gen.ecq_with_db ~allow_neg:false ~allow_diseq:false) (int_range 0 10000))
    (fun ((q, db), seed) ->
      let rng = Random.State.make [| seed |] in
      let has_answers = Exact.by_join_projection q db > 0 in
      match Sampling.sample ~rng ~rounds:48 ~eps:0.3 ~delta:0.2 q db with
      | None -> not has_answers
      | Some _ -> has_answers)

let test_sample_exact () =
  let q = Ac_workload.Query_families.friends () in
  let db =
    Structure.of_facts ~universe_size:4
      [ ("F", [| 0; 1 |]); ("F", [| 0; 2 |]); ("F", [| 3; 1 |]); ("F", [| 3; 2 |]) ]
  in
  let rng = Random.State.make [| 1 |] in
  (match Sampling.sample_exact ~rng q db with
  | None -> Alcotest.fail "expected sample"
  | Some tau -> Alcotest.(check bool) "valid" true (Exact.is_answer q db tau));
  let empty_db = Structure.of_facts ~universe_size:2 [ ("F", [| 0; 0 |]) ] in
  Alcotest.(check bool) "no sample when empty" true
    (Sampling.sample_exact ~rng q empty_db = None)

let test_sample_roughly_uniform () =
  (* two answers (0 and 3); over many samples both must appear *)
  let q = Ac_workload.Query_families.friends () in
  let db =
    Structure.of_facts ~universe_size:4
      [ ("F", [| 0; 1 |]); ("F", [| 0; 2 |]); ("F", [| 3; 1 |]); ("F", [| 3; 2 |]) ]
  in
  let rng = Random.State.make [| 2 |] in
  let counts = Array.make 4 0 in
  for _ = 1 to 40 do
    match Sampling.sample ~rng ~rounds:48 ~eps:0.3 ~delta:0.2 q db with
    | Some [| v |] -> counts.(v) <- counts.(v) + 1
    | _ -> ()
  done;
  Alcotest.(check bool) "answer 0 seen" true (counts.(0) > 0);
  Alcotest.(check bool) "answer 3 seen" true (counts.(3) > 0);
  Alcotest.(check int) "non-answers never" 0 (counts.(1) + counts.(2))

let union_fixture () =
  let q1 = Ecq.parse "ans(x) :- E(x, y)" in
  let q2 = Ecq.parse "ans(x) :- R(x, y)" in
  let db =
    Structure.of_facts ~universe_size:5
      [
        ("E", [| 0; 1 |]);
        ("E", [| 1; 2 |]);
        ("R", [| 1; 0 |]);
        ("R", [| 3; 0 |]);
      ]
  in
  (* Ans(q1) = {0,1}, Ans(q2) = {1,3} → union = {0,1,3} *)
  (q1, q2, db)

let test_union_exact () =
  let q1, q2, db = union_fixture () in
  Alcotest.(check int) "union" 3 (Sampling.union_count_exact [ q1; q2 ] db)

let test_union_karp_luby () =
  let q1, q2, db = union_fixture () in
  let rng = Random.State.make [| 3 |] in
  let est = Sampling.union_count_karp_luby ~rng ~rounds:4000 [ q1; q2 ] db in
  Alcotest.(check bool)
    (Printf.sprintf "karp-luby close (got %.2f)" est)
    true
    (Float.abs (est -. 3.0) < 0.3)

let prop_union_karp_luby_close =
  QCheck2.Test.make ~count:25 ~name:"Karp-Luby union close to exact"
    QCheck2.Gen.(
      triple
        (Gen.ecq ~allow_neg:false ~allow_diseq:true)
        (Gen.ecq ~allow_neg:false ~allow_diseq:true)
        (pair Gen.db (int_range 0 10000)))
    (fun (q1, q2, (db, seed)) ->
      if Ecq.num_free q1 <> Ecq.num_free q2 || Ecq.num_free q1 = 0 then true
      else begin
        let exact = float_of_int (Sampling.union_count_exact [ q1; q2 ] db) in
        let rng = Random.State.make [| seed |] in
        let est = Sampling.union_count_karp_luby ~rng ~rounds:3000 [ q1; q2 ] db in
        if exact = 0.0 then est = 0.0
        else Float.abs (est -. exact) /. exact < 0.35
      end)

let test_union_approx () =
  let q1, q2, db = union_fixture () in
  let rng = Random.State.make [| 4 |] in
  let est =
    Sampling.union_count_approx ~rng ~kl_rounds:120 ~eps:0.25 ~delta:0.1
      [ q1; q2 ] db
  in
  Alcotest.(check bool)
    (Printf.sprintf "approx union close (got %.2f)" est)
    true
    (Float.abs (est -. 3.0) < 1.0)

let test_make_sampler_reuse () =
  let q = Ac_workload.Query_families.friends () in
  let db =
    Structure.of_facts ~universe_size:4
      [ ("F", [| 0; 1 |]); ("F", [| 0; 2 |]); ("F", [| 3; 1 |]); ("F", [| 3; 2 |]) ]
  in
  let sampler =
    Sampling.make_sampler
      ~rng:(Random.State.make [| 6 |])
      ~rounds:32 ~eps:0.3 ~delta:0.2 q db
  in
  for _ = 1 to 5 do
    match sampler () with
    | None -> Alcotest.fail "expected a sample"
    | Some tau -> Alcotest.(check bool) "valid" true (Exact.is_answer q db tau)
  done

let test_union_arity_mismatch () =
  let q1 = Ecq.parse "ans(x) :- E(x, y)" in
  let q2 = Ecq.parse "ans(x, y) :- E(x, y)" in
  let db = Structure.of_facts ~universe_size:2 [ ("E", [| 0; 1 |]) ] in
  match Sampling.union_count_exact [ q1; q2 ] db with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected arity mismatch error"

let tests =
  [
    Alcotest.test_case "sample exact" `Quick test_sample_exact;
    Alcotest.test_case "sample roughly uniform" `Slow test_sample_roughly_uniform;
    Alcotest.test_case "union exact" `Quick test_union_exact;
    Alcotest.test_case "union karp-luby" `Quick test_union_karp_luby;
    Alcotest.test_case "union approx (full pipeline)" `Quick test_union_approx;
    Alcotest.test_case "make_sampler reuse" `Quick test_make_sampler_reuse;
    Alcotest.test_case "union arity mismatch" `Quick test_union_arity_mismatch;
    QCheck_alcotest.to_alcotest prop_sample_is_answer;
    QCheck_alcotest.to_alcotest prop_sample_none_iff_empty;
    QCheck_alcotest.to_alcotest prop_union_karp_luby_close;
  ]

(* Statistical uniformity: 8 equally-likely answers, 160 draws; χ² with 7
   degrees of freedom has 99.9th percentile ≈ 24.3, so a sound sampler
   passes the 35.0 threshold with huge margin while a broken one (e.g.
   always the same answer) scores ≥ 1000. *)
let uniformity_fixture () =
  (* star centres 0..7, each with exactly two leaves 8, 9 *)
  let facts = ref [] in
  for c = 0 to 7 do
    facts := ("F", [| c; 8 |]) :: ("F", [| c; 9 |]) :: !facts
  done;
  ( Ac_workload.Query_families.friends (),
    Structure.of_facts ~universe_size:10 !facts )

let chi_square counts expected =
  Array.fold_left
    (fun acc c ->
      let d = float_of_int c -. expected in
      acc +. (d *. d /. expected))
    0.0 counts

let run_uniformity name draw =
  let counts = Array.make 8 0 in
  let misses = ref 0 in
  for _ = 1 to 160 do
    match draw () with
    | Some [| v |] when v < 8 -> counts.(v) <- counts.(v) + 1
    | _ -> incr misses
  done;
  Alcotest.(check bool) (name ^ ": few misses") true (!misses <= 16);
  let expected = float_of_int (160 - !misses) /. 8.0 in
  let chi2 = chi_square counts expected in
  Alcotest.(check bool)
    (Printf.sprintf "%s: chi2=%.1f below threshold" name chi2)
    true (chi2 < 35.0)

let test_jvv_uniformity () =
  let q, db = uniformity_fixture () in
  let sampler =
    Sampling.make_sampler
      ~rng:(Random.State.make [| 31 |])
      ~rounds:24 ~eps:0.3 ~delta:0.2 q db
  in
  run_uniformity "jvv" sampler

let test_dlm_sampler_uniformity () =
  let q, db = uniformity_fixture () in
  let rng = Random.State.make [| 33 |] in
  run_uniformity "dlm" (fun () ->
      Sampling.sample_dlm ~rng ~rounds:24 ~eps:0.3 ~delta:0.2 q db)

let test_exact_sampler_uniformity () =
  let q, db = uniformity_fixture () in
  let rng = Random.State.make [| 35 |] in
  run_uniformity "exact" (fun () -> Sampling.sample_exact ~rng q db)

let tests =
  tests
  @ [
      Alcotest.test_case "jvv uniformity" `Slow test_jvv_uniformity;
      Alcotest.test_case "dlm sampler uniformity" `Slow test_dlm_sampler_uniformity;
      Alcotest.test_case "exact sampler uniformity" `Quick test_exact_sampler_uniformity;
    ]
