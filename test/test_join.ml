open Ac_relational
open Ac_join

let relation_of_list arity tuples = Relation.of_list ~arity tuples

(* Brute-force reference: all assignments satisfying every atom. *)
let brute ~num_vars ~universe_size ?domains atoms =
  let assignment = Array.make num_vars 0 in
  let out = ref [] in
  let in_domain v x =
    match domains with
    | None -> true
    | Some ds -> ( match ds.(v) with None -> true | Some a -> Array.mem x a)
  in
  let satisfies () =
    List.for_all
      (fun (a : Generic_join.atom) ->
        Relation.mem a.Generic_join.relation
          (Array.map (fun v -> assignment.(v)) a.Generic_join.scope))
      atoms
  in
  let rec go i =
    if i = num_vars then begin
      if satisfies () then out := Array.copy assignment :: !out
    end
    else
      for x = 0 to universe_size - 1 do
        if in_domain i x then begin
          assignment.(i) <- x;
          go (i + 1)
        end
      done
  in
  if num_vars = 0 then (if satisfies () then out := [ [||] ])
  else if universe_size > 0 then go 0;
  !out

let sort_sols = List.sort compare

let test_triangle_join () =
  (* R(x,y), S(y,z), T(z,x) *)
  let r = relation_of_list 2 [ [| 0; 1 |]; [| 1; 2 |]; [| 0; 2 |] ] in
  let s = relation_of_list 2 [ [| 1; 2 |]; [| 2; 0 |] ] in
  let t = relation_of_list 2 [ [| 2; 0 |]; [| 0; 1 |] ] in
  let atoms =
    [
      Generic_join.atom [| 0; 1 |] r;
      Generic_join.atom [| 1; 2 |] s;
      Generic_join.atom [| 2; 0 |] t;
    ]
  in
  let got = sort_sols (Generic_join.solutions ~num_vars:3 ~universe_size:3 atoms) in
  let want = sort_sols (brute ~num_vars:3 ~universe_size:3 atoms) in
  Alcotest.(check (list (array int))) "triangle" want got

let test_repeated_vars () =
  (* R(x, x, y): only self-consistent tuples survive *)
  let r = relation_of_list 3 [ [| 0; 0; 1 |]; [| 0; 1; 1 |]; [| 2; 2; 2 |] ] in
  let atoms = [ Generic_join.atom [| 0; 0; 1 |] r ] in
  let got = sort_sols (Generic_join.solutions ~num_vars:2 ~universe_size:3 atoms) in
  Alcotest.(check (list (array int))) "repeated" [ [| 0; 1 |]; [| 2; 2 |] ] got

let test_free_variable () =
  (* variable 1 not in any atom: ranges over the universe *)
  let r = relation_of_list 1 [ [| 1 |] ] in
  let atoms = [ Generic_join.atom [| 0 |] r ] in
  let got = sort_sols (Generic_join.solutions ~num_vars:2 ~universe_size:3 atoms) in
  Alcotest.(check (list (array int))) "free var"
    [ [| 1; 0 |]; [| 1; 1 |]; [| 1; 2 |] ]
    got

let test_domains () =
  let r = relation_of_list 2 [ [| 0; 1 |]; [| 1; 2 |]; [| 2; 0 |] ] in
  let atoms = [ Generic_join.atom [| 0; 1 |] r ] in
  let domains = [| Some [| 0; 2 |]; None |] in
  let got = sort_sols (Generic_join.solutions ~num_vars:2 ~universe_size:3 ~domains atoms) in
  Alcotest.(check (list (array int))) "domains" [ [| 0; 1 |]; [| 2; 0 |] ] got

let test_empty_relation () =
  let r = Relation.create ~arity:2 in
  let atoms = [ Generic_join.atom [| 0; 1 |] r ] in
  Alcotest.(check int) "no solutions" 0
    (Generic_join.count ~num_vars:2 ~universe_size:3 atoms)

let test_early_stop () =
  let r = relation_of_list 1 [ [| 0 |]; [| 1 |]; [| 2 |] ] in
  let atoms = [ Generic_join.atom [| 0 |] r ] in
  let seen = ref 0 in
  Generic_join.iter ~num_vars:1 ~universe_size:3 atoms ~f:(fun _ ->
      incr seen;
      false);
  Alcotest.(check int) "stopped after first" 1 !seen

let test_prepared_reuse () =
  let r = relation_of_list 2 [ [| 0; 1 |]; [| 1; 2 |] ] in
  let p =
    Generic_join.prepare ~num_vars:2 ~universe_size:3
      [ Generic_join.atom [| 0; 1 |] r ]
  in
  let count domains =
    let n = ref 0 in
    Generic_join.run ?domains p ~f:(fun _ ->
        incr n;
        true);
    !n
  in
  Alcotest.(check int) "full" 2 (count None);
  Alcotest.(check int) "restricted" 1 (count (Some [| Some [| 0 |]; None |]));
  Alcotest.(check int) "full again" 2 (count None)

let test_custom_order () =
  let r = relation_of_list 2 [ [| 0; 1 |]; [| 1; 0 |] ] in
  let atoms = [ Generic_join.atom [| 0; 1 |] r ] in
  let a = sort_sols (Generic_join.solutions ~num_vars:2 ~universe_size:2 ~order:[| 1; 0 |] atoms) in
  let b = sort_sols (Generic_join.solutions ~num_vars:2 ~universe_size:2 ~order:[| 0; 1 |] atoms) in
  Alcotest.(check (list (array int))) "order invariant" a b

(* Random atoms: generic join = brute force. *)
let gen_instance =
  QCheck2.Gen.(
    let num_vars = 3 and universe = 3 in
    list_size (int_range 1 4)
      (pair
         (list_size (int_range 1 2) (int_range 0 (num_vars - 1)))
         (list_size (int_range 0 8)
            (list_size (int_range 1 2) (int_range 0 (universe - 1)))))
    >>= fun raw_atoms ->
    let atoms =
      List.filter_map
        (fun (scope, tuples) ->
          match scope with
          | [] -> None
          | _ ->
              let arity = List.length scope in
              let rel = Relation.create ~arity in
              List.iter
                (fun t ->
                  if List.length t = arity then Relation.add rel (Array.of_list t))
                tuples;
              Some (Generic_join.atom (Array.of_list scope) rel))
        raw_atoms
    in
    return atoms)

let prop_matches_brute =
  QCheck2.Test.make ~count:300 ~name:"generic join = brute force" gen_instance
    (fun atoms ->
      let got = sort_sols (Generic_join.solutions ~num_vars:3 ~universe_size:3 atoms) in
      let want = sort_sols (brute ~num_vars:3 ~universe_size:3 atoms) in
      got = want)

let prop_matches_brute_with_domains =
  QCheck2.Test.make ~count:200 ~name:"generic join with domains = brute force"
    QCheck2.Gen.(
      pair gen_instance
        (array_size (return 3)
           (opt (array_size (int_range 0 3) (int_range 0 2)))))
    (fun (atoms, domains) ->
      let got =
        sort_sols (Generic_join.solutions ~num_vars:3 ~universe_size:3 ~domains atoms)
      in
      let want = sort_sols (brute ~num_vars:3 ~universe_size:3 ~domains atoms) in
      got = want)

let tests =
  [
    Alcotest.test_case "triangle join" `Quick test_triangle_join;
    Alcotest.test_case "repeated variables" `Quick test_repeated_vars;
    Alcotest.test_case "free variable" `Quick test_free_variable;
    Alcotest.test_case "domains" `Quick test_domains;
    Alcotest.test_case "empty relation" `Quick test_empty_relation;
    Alcotest.test_case "early stop" `Quick test_early_stop;
    Alcotest.test_case "prepared reuse" `Quick test_prepared_reuse;
    Alcotest.test_case "custom order" `Quick test_custom_order;
    QCheck_alcotest.to_alcotest prop_matches_brute;
    QCheck_alcotest.to_alcotest prop_matches_brute_with_domains;
  ]
