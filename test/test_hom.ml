open Ac_relational
open Ac_hom

let structure_of facts ~universe_size = Structure.of_facts ~universe_size facts

(* K3 → K3 has homomorphisms (identity); C5 → K2 does not (odd cycle not
   2-colourable); C4 → K2 does. *)
let cycle_structure n =
  let facts =
    List.concat_map
      (fun i -> [ ("E", [| i; (i + 1) mod n |]); ("E", [| (i + 1) mod n; i |]) ])
      (List.init n Fun.id)
  in
  structure_of facts ~universe_size:n

let clique_structure n =
  let facts = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then facts := ("E", [| i; j |]) :: !facts
    done
  done;
  structure_of !facts ~universe_size:n

let test_colouring () =
  let check name source target expected =
    let inst = { Hom.source; target } in
    Alcotest.(check bool) (name ^ " backtracking") expected (Hom.decide_backtracking inst);
    Alcotest.(check bool) (name ^ " decomposition") expected (Hom.decide_decomposition inst)
  in
  check "C5 -> K2" (cycle_structure 5) (clique_structure 2) false;
  check "C4 -> K2" (cycle_structure 4) (clique_structure 2) true;
  check "K3 -> K3" (clique_structure 3) (clique_structure 3) true;
  check "K4 -> K3" (clique_structure 4) (clique_structure 3) false

let test_find_valid () =
  let inst = { Hom.source = cycle_structure 4; target = clique_structure 2 } in
  match Hom.find inst with
  | None -> Alcotest.fail "expected a homomorphism"
  | Some h -> Alcotest.(check bool) "valid" true (Hom.is_homomorphism inst h)

let test_domains_pin () =
  let inst = { Hom.source = cycle_structure 4; target = clique_structure 2 } in
  let domains = Array.make 4 None in
  domains.(0) <- Some [| 1 |];
  (match Hom.find ~domains inst with
  | None -> Alcotest.fail "expected a homomorphism with pin"
  | Some h -> Alcotest.(check int) "pinned" 1 h.(0));
  (* contradictory pins on adjacent vertices of C4 into K2 *)
  let domains = Array.make 4 None in
  domains.(0) <- Some [| 0 |];
  domains.(1) <- Some [| 0 |];
  Alcotest.(check bool) "contradictory pin" false (Hom.decide_backtracking ~domains inst)

let test_restrict_domains () =
  (* target where vertex 2 is isolated: no source vertex can map there *)
  let target =
    structure_of [ ("E", [| 0; 1 |]); ("E", [| 1; 0 |]) ] ~universe_size:3
  in
  let source = structure_of [ ("E", [| 0; 1 |]) ] ~universe_size:2 in
  match Hom.restrict_domains { Hom.source; target } with
  | None -> Alcotest.fail "should be satisfiable"
  | Some domains ->
      Alcotest.(check bool) "0 cannot map to 2" false (Array.mem 2 domains.(0));
      Alcotest.(check bool) "1 cannot map to 2" false (Array.mem 2 domains.(1))

let test_empty_target_relation () =
  let source = structure_of [ ("E", [| 0; 1 |]) ] ~universe_size:2 in
  let target = structure_of [ ("F", [| 0; 0 |]) ] ~universe_size:1 in
  (match Hom.restrict_domains { Hom.source; target } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing symbol should raise")

let test_hypergraph_of_structure () =
  let s = structure_of [ ("R", [| 0; 1; 2 |]); ("P", [| 3 |]) ] ~universe_size:5 in
  let h = Hom.hypergraph s in
  Alcotest.(check int) "vertices" 5 (Ac_hypergraph.Hypergraph.num_vertices h);
  (* {0,1,2}, {3} and the singleton for isolated 4 *)
  Alcotest.(check int) "edges" 3 (Ac_hypergraph.Hypergraph.num_edges h)

let test_count_brute () =
  (* homs from a single edge (directed both ways) into K3: ordered pairs of
     distinct colours = 6 *)
  let source = structure_of [ ("E", [| 0; 1 |]); ("E", [| 1; 0 |]) ] ~universe_size:2 in
  Alcotest.(check int) "edge -> K3" 6
    (Hom.count_brute_force { Hom.source; target = clique_structure 3 })

(* Random instances: both solvers agree with the brute-force count. *)
let gen_instance =
  QCheck2.Gen.(
    let sn = 3 and tn = 3 in
    pair
      (list_size (int_range 1 4) (pair (int_range 0 (sn - 1)) (int_range 0 (sn - 1))))
      (list_size (int_range 0 6) (pair (int_range 0 (tn - 1)) (int_range 0 (tn - 1))))
    >>= fun (sedges, tedges) ->
    let source =
      structure_of (List.map (fun (a, b) -> ("E", [| a; b |])) sedges) ~universe_size:sn
    in
    let tedges = if tedges = [] then [ (0, 0) ] else tedges in
    let target =
      structure_of (List.map (fun (a, b) -> ("E", [| a; b |])) tedges) ~universe_size:tn
    in
    return { Hom.source; target })

let prop_solvers_agree =
  QCheck2.Test.make ~count:300 ~name:"solvers agree with brute force" gen_instance
    (fun inst ->
      let expected = Hom.count_brute_force inst > 0 in
      Hom.decide_backtracking inst = expected
      && Hom.decide_decomposition inst = expected)

let prop_prepared_consistent =
  QCheck2.Test.make ~count:100 ~name:"prepared solver reusable" gen_instance
    (fun inst ->
      let p = Hom.prepare ~strategy:Hom.Backtracking inst in
      let a = Hom.decide p () in
      let b = Hom.decide p () in
      let pd = Hom.prepare ~strategy:Hom.Decomposition inst in
      a = b && Hom.decide pd () = a)

let tests =
  [
    Alcotest.test_case "graph colouring homs" `Quick test_colouring;
    Alcotest.test_case "find returns valid hom" `Quick test_find_valid;
    Alcotest.test_case "domain pins" `Quick test_domains_pin;
    Alcotest.test_case "restrict domains" `Quick test_restrict_domains;
    Alcotest.test_case "missing symbol" `Quick test_empty_target_relation;
    Alcotest.test_case "hypergraph of structure" `Quick test_hypergraph_of_structure;
    Alcotest.test_case "count brute force" `Quick test_count_brute;
    QCheck_alcotest.to_alcotest prop_solvers_agree;
    QCheck_alcotest.to_alcotest prop_prepared_consistent;
  ]

(* Dalmau–Jonsson counting DP = brute-force count. *)
let prop_count_dp_matches_brute =
  QCheck2.Test.make ~count:200 ~name:"count_dp = brute force" gen_instance
    (fun inst -> Hom.count_dp inst = Hom.count_brute_force inst)

let test_count_dp_known () =
  (* homs from the directed path a→b into K3 (directed both ways) = walks
     of length 1 = 6 *)
  let source = structure_of [ ("E", [| 0; 1 |]) ] ~universe_size:2 in
  Alcotest.(check int) "path into K3" 6
    (Hom.count_dp { Hom.source; target = clique_structure 3 });
  (* proper 2-colourings of C4, ordered: 2 *)
  Alcotest.(check int) "C4 into K2" 2
    (Hom.count_dp { Hom.source = cycle_structure 4; target = clique_structure 2 });
  (* C5 into K2: none *)
  Alcotest.(check int) "C5 into K2" 0
    (Hom.count_dp { Hom.source = cycle_structure 5; target = clique_structure 2 })

let tests =
  tests
  @ [
      Alcotest.test_case "count_dp known values" `Quick test_count_dp_known;
      QCheck_alcotest.to_alcotest prop_count_dp_matches_brute;
    ]
