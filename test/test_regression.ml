(* Focused edge-case and regression scenarios across the whole pipeline. *)

module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Relation = Ac_relational.Relation
module Fptras = Approxcount.Fptras
module Fpras = Approxcount.Fpras
module Exact = Approxcount.Exact
module Colour_oracle = Approxcount.Colour_oracle

let self_loop_db () =
  Structure.of_facts ~universe_size:4
    [ ("E", [| 0; 0 |]); ("E", [| 1; 2 |]); ("E", [| 3; 3 |]) ]

let test_repeated_variable_atom () =
  (* ans(x) :- E(x, x): counts self-loops; exercises the repeated-variable
     filtering of tries, arc consistency and bag solutions *)
  let q = Ecq.parse "ans(x) :- E(x, x)" in
  let db = self_loop_db () in
  Alcotest.(check int) "exact self loops" 2 (Exact.by_join_projection q db);
  Alcotest.(check int) "brute agrees" 2 (Exact.brute_force q db);
  let r =
    Fptras.approx_count ~rng:(Random.State.make [| 1 |]) ~eps:0.3 ~delta:0.2 q db
  in
  Alcotest.(check (float 1e-9)) "fptras" 2.0 r.Fptras.estimate;
  Alcotest.(check int) "fpras automaton" 2 (Fpras.exact_count_automaton q db)

let test_repeated_variable_negated () =
  (* ans(x) :- P(x), !E(x, x): elements without a self-loop *)
  let q = Ecq.parse "ans(x) :- P(x), !E(x, x)" in
  let db = self_loop_db () in
  for v = 0 to 3 do
    Structure.add_fact db "P" [| v |]
  done;
  Alcotest.(check int) "exact" 2 (Exact.by_join_projection q db);
  Alcotest.(check int) "free-enum agrees" 2 (Exact.by_free_enumeration q db)

let test_all_free_all_diseq () =
  (* quantifier-free with all-pairs disequalities = injective embeddings *)
  let q = Ecq.parse "ans(x, y) :- E(x, y), x != y" in
  let db = self_loop_db () in
  (* E facts without the self-loops: only (1,2) *)
  Alcotest.(check int) "injective edges" 1 (Exact.by_join_projection q db)

let test_constant_via_singleton () =
  (* the §1.1 constants trick: R_v = {v} pins a variable *)
  let db = Structure.with_singletons (self_loop_db ()) in
  let q =
    Ecq.make ~num_free:1 ~num_vars:2
      [
        Ecq.Atom ("E", [| 1; 0 |]);
        Ecq.Atom (Structure.singleton_symbol 1, [| 1 |]);
      ]
  in
  (* answers: x with E(1, x): only 2 *)
  Alcotest.(check int) "constant pin" 1 (Exact.by_join_projection q db);
  Alcotest.(check (list (array int))) "answer is 2" [ [| 2 |] ] (Exact.answers q db)

let test_universe_of_size_one () =
  let q = Ecq.parse "ans(x) :- E(x, x)" in
  let db = Structure.of_facts ~universe_size:1 [ ("E", [| 0; 0 |]) ] in
  Alcotest.(check int) "single element" 1 (Exact.by_join_projection q db);
  let q2 = Ecq.parse "ans(x, y) :- E(x, x), E(y, y), x != y" in
  Alcotest.(check int) "diseq impossible" 0 (Exact.by_join_projection q2 db)

let test_no_hom_box_is_cheap () =
  (* the colour-free shortcut: a box with no homomorphism at all must not
     pay colouring rounds *)
  let q = Ac_workload.Query_families.friends () in
  let db =
    Structure.of_facts ~universe_size:5
      [ ("F", [| 0; 1 |]); ("F", [| 0; 2 |]) ]
  in
  let oracle =
    Colour_oracle.create
      ~rng:(Random.State.make [| 1 |])
      ~rounds:10000 ~engine:Colour_oracle.Tree_dp q db
  in
  (* person 4 has no friends: the box {4} admits no hom *)
  Alcotest.(check bool) "no answer" false
    (Colour_oracle.has_answer_in_box oracle [| [| 4 |] |]);
  Alcotest.(check bool) "cheap decision" true (Colour_oracle.hom_calls oracle <= 3)

let test_witness_shortcut () =
  (* box where the first witness already satisfies the disequality: one
     solve call suffices even with a tiny colour budget *)
  let q = Ac_workload.Query_families.friends () in
  let db =
    Structure.of_facts ~universe_size:5
      [ ("F", [| 0; 1 |]); ("F", [| 0; 2 |]) ]
  in
  let oracle =
    Colour_oracle.create
      ~rng:(Random.State.make [| 1 |])
      ~rounds:1 ~engine:Colour_oracle.Tree_dp q db
  in
  Alcotest.(check bool) "found" true
    (Colour_oracle.has_answer_in_box oracle [| [| 0 |] |])

let test_two_diseqs_same_pair_vars () =
  (* duplicated disequalities collapse in Δ(φ) *)
  let q =
    Ecq.make ~num_free:2 ~num_vars:2
      [ Ecq.Atom ("E", [| 0; 1 |]); Ecq.Diseq (0, 1); Ecq.Diseq (1, 0) ]
  in
  Alcotest.(check (list (pair int int))) "delta deduped" [ (0, 1) ] (Ecq.delta q)

let test_boolean_cq_fpras () =
  (* ℓ = 0 CQ through the FPRAS pipeline: count is 0 or 1 *)
  let q = Ecq.parse "ans() :- E(x, y), E(y, z)" in
  let db = Structure.of_facts ~universe_size:3 [ ("E", [| 0; 1 |]); ("E", [| 1; 2 |]) ] in
  Alcotest.(check int) "boolean yes" 1 (Fpras.exact_count_automaton q db);
  let db0 = Structure.of_facts ~universe_size:3 [ ("E", [| 0; 1 |]) ] in
  (* E(x,y) ∧ E(y,z) with only edge 0→1: no y with in+out → no solution *)
  Alcotest.(check int) "boolean no" 0 (Fpras.exact_count_automaton q db0)

let test_medium_estimator_accuracy_sweep () =
  (* the estimator path across three magnitudes of |Ans| *)
  let rng = Random.State.make [| 5 |] in
  List.iter
    (fun n ->
      let q = Ac_workload.Query_families.star_distinct 2 in
      let db =
        Ac_workload.Dbgen.random_structure ~rng ~universe_size:n [ ("E", 2, 4 * n) ]
      in
      let exact = float_of_int (Exact.by_join_projection q db) in
      let r =
        Fptras.approx_count
          ~rng:(Random.State.make [| n |])
          ~eps:0.25 ~delta:0.1 q db
      in
      let err = Float.abs (r.Fptras.estimate -. exact) /. Float.max exact 1.0 in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d err=%.3f" n err)
        true (err <= 0.5))
    [ 40; 80; 160 ]

let tests =
  [
    Alcotest.test_case "repeated variable atom" `Quick test_repeated_variable_atom;
    Alcotest.test_case "repeated variable negated" `Quick test_repeated_variable_negated;
    Alcotest.test_case "all free all diseq" `Quick test_all_free_all_diseq;
    Alcotest.test_case "constants via singletons" `Quick test_constant_via_singleton;
    Alcotest.test_case "universe of size one" `Quick test_universe_of_size_one;
    Alcotest.test_case "no-hom box is cheap" `Quick test_no_hom_box_is_cheap;
    Alcotest.test_case "witness shortcut" `Quick test_witness_shortcut;
    Alcotest.test_case "duplicate diseqs" `Quick test_two_diseqs_same_pair_vars;
    Alcotest.test_case "boolean CQ fpras" `Quick test_boolean_cq_fpras;
    Alcotest.test_case "estimator accuracy sweep" `Slow test_medium_estimator_accuracy_sweep;
  ]

let test_by_hom_dp () =
  (* quantifier-free CQ: count via the Dalmau–Jonsson DP *)
  let q = Ecq.parse "ans(x, y) :- E(x, y), E(y, x)" in
  let db =
    Structure.of_facts ~universe_size:4
      [ ("E", [| 0; 1 |]); ("E", [| 1; 0 |]); ("E", [| 2; 3 |]) ]
  in
  (match Approxcount.Exact.by_hom_dp q db with
  | Some n ->
      Alcotest.(check int) "hom dp" (Approxcount.Exact.by_join_projection q db) n
  | None -> Alcotest.fail "quantifier-free CQ should qualify");
  (* existential variable disqualifies *)
  let q2 = Ecq.parse "ans(x) :- E(x, y)" in
  Alcotest.(check bool) "existential rejected" true
    (Approxcount.Exact.by_hom_dp q2 db = None);
  (* disequality disqualifies *)
  let q3 = Ecq.parse "ans(x, y) :- E(x, y), x != y" in
  Alcotest.(check bool) "diseq rejected" true
    (Approxcount.Exact.by_hom_dp q3 db = None);
  (* negation is fine: it is a positive atom over the complement *)
  let q4 = Ecq.parse "ans(x, y) :- E(x, y), !E(y, x)" in
  match Approxcount.Exact.by_hom_dp q4 db with
  | Some n ->
      Alcotest.(check int) "negation ok" (Approxcount.Exact.by_join_projection q4 db) n
  | None -> Alcotest.fail "negation should qualify"

let test_negation_arity_guard () =
  (* a high-arity negation over a large universe used to trip a
     complement-size guard; the lazy complement view answers it without
     materializing the 10^8-tuple complement (Observation 21's cost is
     paid only when something enumerates it) *)
  let q =
    Ac_query.Ecq.make ~num_free:1 ~num_vars:4
      [
        Ac_query.Ecq.Atom ("R", [| 0; 1; 2; 3 |]);
        Ac_query.Ecq.Neg_atom ("R", [| 1; 2; 3; 0 |]);
      ]
  in
  let db = Structure.create ~universe_size:100 in
  Structure.add_fact db "R" [| 0; 1; 2; 3 |];
  Alcotest.(check int) "lazy complement answers exactly" 1
    (Approxcount.Exact.by_join_projection q db);
  (* materializing that complement still fails loudly, with the typed
     overflow error and its stable exit code *)
  match
    Relation.complement ~universe_size:100 (Structure.relation db "R")
  with
  | exception Ac_runtime.Error.E (Ac_runtime.Error.Complement_overflow o) ->
      Alcotest.(check int) "cap reported" Relation.default_complement_cap o.cap
  | _ -> Alcotest.fail "expected the typed complement-overflow error"

let tests =
  tests
  @ [
      Alcotest.test_case "by_hom_dp" `Quick test_by_hom_dp;
      Alcotest.test_case "negation arity guard" `Quick test_negation_arity_guard;
    ]
