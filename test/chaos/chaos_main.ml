(* Chaos soak: governed execution under seeded probabilistic fault
   injection. Every outcome must be a value or a typed error — never an
   unhandled exception — and the same seed must reproduce the same
   event stream and the same outcome. *)

module Budget = Ac_runtime.Budget
module Error = Ac_runtime.Error
module Chaos = Ac_runtime.Chaos
module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Planner = Approxcount.Planner
module Exact = Approxcount.Exact

let query () = Ecq.parse "ans(x) :- E(x, y), E(x, z), y != z"

let db () =
  Structure.of_facts ~universe_size:8
    [
      ("E", [| 0; 1 |]); ("E", [| 0; 2 |]); ("E", [| 1; 2 |]);
      ("E", [| 2; 3 |]); ("E", [| 3; 4 |]); ("E", [| 3; 5 |]);
      ("E", [| 5; 6 |]); ("E", [| 6; 7 |]); ("E", [| 6; 0 |]);
    ]

type outcome = Value of float * string * bool | Failed of string

let run_once ~seed =
  let budget = Budget.create ~max_ticks:1_000_000 ~check_every:16 () in
  let chaos = Chaos.create ~p_fail:0.35 ~p_delay:0.0 ~budget ~seed () in
  let rng = Random.State.make [| seed |] in
  match
    Planner.count_governed ~rng ~chaos ~budget ~eps:0.3 ~delta:0.2
      (query ()) (db ())
  with
  | Ok g ->
      Value
        (g.Planner.estimate, Planner.rung_name g.Planner.rung, g.Planner.degraded)
  | Error e -> Failed (Error.class_name e)

let test_soak_total () =
  (* across many seeds: some runs degrade, some fail, all stay typed *)
  let degraded = ref 0 and failed = ref 0 and clean = ref 0 in
  for seed = 1 to 60 do
    match run_once ~seed with
    | Value (v, _, d) ->
        if not (Float.is_finite v && v >= 0.0) then
          Alcotest.failf "seed %d: bad estimate %f" seed v;
        incr (if d then degraded else clean)
    | Failed cls ->
        if cls <> "fault" && cls <> "budget" then
          Alcotest.failf "seed %d: unexpected error class %s" seed cls;
        incr failed
  done;
  (* p_fail = 0.35 over a 4-rung chain: all three behaviours must show up *)
  Alcotest.(check bool) "some runs degrade" true (!degraded > 0);
  Alcotest.(check bool) "some runs fail all rungs" true (!failed > 0);
  Alcotest.(check bool) "some runs stay clean" true (!clean > 0)

let test_soak_reproducible () =
  for seed = 1 to 20 do
    if run_once ~seed <> run_once ~seed then
      Alcotest.failf "seed %d: outcome not reproducible" seed
  done

let test_soak_leaves_clean_state () =
  let expected = Exact.by_join_projection (query ()) (db ()) in
  for seed = 1 to 20 do
    ignore (run_once ~seed);
    let got = Exact.by_join_projection (query ()) (db ()) in
    if got <> expected then
      Alcotest.failf "seed %d corrupted shared state: %d <> %d" seed got
        expected
  done

let test_delays_only_slow_down () =
  (* pure delays: no faults, so the planned rung must answer un-degraded *)
  let chaos = Chaos.create ~p_fail:0.0 ~p_delay:0.5 ~delay_ms:1 ~seed:7 () in
  let rng = Random.State.make [| 7 |] in
  match
    Planner.count_governed ~rng ~chaos ~eps:0.3 ~delta:0.2 (query ())
      (db ())
  with
  | Ok g -> Alcotest.(check bool) "not degraded" false g.Planner.degraded
  | Error e -> Alcotest.failf "delays must not fail: %s" (Error.message e)

let () =
  Alcotest.run "chaos"
    [
      ( "soak",
        [
          Alcotest.test_case "typed outcomes only" `Quick test_soak_total;
          Alcotest.test_case "same seed, same outcome" `Quick
            test_soak_reproducible;
          Alcotest.test_case "no corrupted shared state" `Quick
            test_soak_leaves_clean_state;
          Alcotest.test_case "delays alone never degrade" `Quick
            test_delays_only_slow_down;
        ] );
    ]
