(* Wire-level chaos soak: a daemon behind the fault-injecting proxy,
   hammered with seeded COUNTs through the retrying client under
   probabilistic frame faults. Every answer must be bit-identical to
   the single-shot library result (retries never change the
   experiment), the scheduler must never compute the same request
   twice (retries never double-spend budget), and the same chaos seed
   must replay the same fault history. *)

module Api = Approxcount.Api
module Ecq = Ac_query.Ecq
module Error = Ac_runtime.Error
module Chaos = Ac_runtime.Chaos
module Wire = Ac_server.Wire
module Catalog = Ac_server.Catalog
module Scheduler = Ac_server.Scheduler
module Server = Ac_server.Server
module Client = Ac_server.Client
module Chaos_proxy = Ac_server.Chaos_proxy

let () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let db () =
  let rng = Random.State.make [| 2022 |] in
  Ac_workload.Graph.to_structure
    (Ac_workload.Graph.random_gnp ~rng 24 0.25)

let query = "ans(x) :- E(x,y), E(y,z)"

let single_shot ~seed =
  let q = Result.get_ok (Ecq.parse_result query) in
  match Api.run (Api.request ~seed ~jobs:1 q (db ())) with
  | Ok r -> r.Api.estimate
  | Error e -> Alcotest.failf "single-shot failed: %s" (Error.message e)

let tmp_sock () =
  let f = Filename.temp_file "acq_chaos" ".sock" in
  Sys.remove f;
  f

let durable_config =
  {
    Client.Durable.retries = 6;
    backoff_base_ms = 1.0;
    backoff_cap_ms = 10.0;
    read_timeout_ms = None;
    deadline_ms = None;
    seed = 7;
  }

let with_soak ~chaos_seed f =
  let server = Server.create () in
  ignore (Catalog.add (Server.catalog server) ~name:"g" (db ()));
  let path = tmp_sock () in
  (* every non-killing fault class; Delay is kept tiny so the soak
     stays fast, and Drop exercises the reconnect path *)
  let plan =
    Chaos.Wire_plan.create ~p_fault:0.25 ~delay_ms:5 ~seed:chaos_seed ()
  in
  let proxy =
    Chaos_proxy.start ~path ~plan
      ~serve:(fun fd -> Server.serve_connection server fd)
      ()
  in
  Fun.protect
    ~finally:(fun () -> Chaos_proxy.stop proxy)
    (fun () -> f server proxy (Client.Unix_socket path))

let soak_seeds = List.init 12 (fun i -> 100 + i)

let test_soak_bit_identical () =
  with_soak ~chaos_seed:2022 (fun server proxy address ->
      let client = Client.Durable.create ~config:durable_config address in
      Fun.protect
        ~finally:(fun () -> Client.Durable.close client)
        (fun () ->
          List.iter
            (fun seed ->
              let expected = single_shot ~seed in
              match
                Client.Durable.call client
                  (Wire.Count (Wire.params ~seed ~db:(Wire.Named "g") query))
              with
              | Ok (Wire.Counted o) ->
                  if
                    Int64.bits_of_float o.Wire.estimate
                    <> Int64.bits_of_float expected
                  then
                    Alcotest.failf
                      "seed %d: %h under chaos, %h single-shot — a retry \
                       changed the answer"
                      seed o.Wire.estimate expected
              | Ok (Wire.Refused { error_class; message; _ }) ->
                  Alcotest.failf "seed %d refused [%s]: %s" seed error_class
                    message
              | Ok _ -> Alcotest.failf "seed %d: not a COUNT reply" seed
              | Error e ->
                  Alcotest.failf "seed %d failed: %s" seed (Error.message e))
            soak_seeds;
          (* the soak only proves something if faults actually fired *)
          let fired = List.length (Chaos.Wire_plan.history (Chaos_proxy.plan proxy)) in
          Alcotest.(check bool) "faults fired" true (fired > 0);
          Alcotest.(check bool) "retries happened" true
            (Client.Durable.retries_total client > 0);
          (* zero double-spend: every distinct request computed once *)
          let s = Scheduler.stats (Server.scheduler server) in
          Alcotest.(check int) "each request computed exactly once"
            (List.length soak_seeds) s.Scheduler.completed))

let test_soak_replayable () =
  (* the same chaos seed replays the same fault history, frame for
     frame — a failing soak run is reproducible from its seed *)
  let history chaos_seed =
    with_soak ~chaos_seed (fun _server proxy address ->
        let client = Client.Durable.create ~config:durable_config address in
        Fun.protect
          ~finally:(fun () -> Client.Durable.close client)
          (fun () ->
            List.iter
              (fun seed ->
                match
                  Client.Durable.call client
                    (Wire.Count (Wire.params ~seed ~db:(Wire.Named "g") query))
                with
                | Ok _ -> ()
                | Error e ->
                    Alcotest.failf "seed %d failed: %s" seed (Error.message e))
              (List.init 6 (fun i -> 300 + i));
            Chaos.Wire_plan.history (Chaos_proxy.plan proxy)))
  in
  let show h =
    String.concat ";"
      (List.map
         (fun (frame, fault) ->
           Printf.sprintf "%d:%s" frame (Chaos.wire_fault_name fault))
         h)
  in
  Alcotest.(check string) "same seed, same fault stream" (show (history 77))
    (show (history 77))

let () =
  Alcotest.run "chaos-wire"
    [
      ( "wire-soak",
        [
          Alcotest.test_case "bit-identical under probabilistic faults" `Slow
            test_soak_bit_identical;
          Alcotest.test_case "fault stream replayable from seed" `Slow
            test_soak_replayable;
        ] );
    ]
