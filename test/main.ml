let () =
  Alcotest.run "approxcount"
    [
      ("simplex", Test_simplex.tests);
      ("rational", Test_rat.tests);
      ("bitset", Test_bitset.tests);
      ("relational", Test_relational.tests);
      ("io", Test_io.tests);
      ("hypergraph", Test_hypergraph.tests);
      ("decomposition", Test_decomposition.tests);
      ("widths", Test_widths.tests);
      ("hypertree", Test_hypertree.tests);
      ("query", Test_query.tests);
      ("trie", Test_trie.tests);
      ("join", Test_join.tests);
      ("columnar", Test_columnar.tests);
      ("hom", Test_hom.tests);
      ("dlm", Test_dlm.tests);
      ("automata", Test_automata.tests);
      ("assoc", Test_assoc.tests);
      ("oracle", Test_oracle.tests);
      ("fptras", Test_fptras.tests);
      ("fpras", Test_fpras.tests);
      ("applications", Test_applications.tests);
      ("sampling", Test_sampling.tests);
      ("workload", Test_workload.tests);
      ("regression", Test_regression.tests);
      ("planner-ucq-core", Test_planner.tests);
      ("misc", Test_misc.tests);
      ("runtime", Test_runtime.tests);
      ("malformed", Test_malformed.tests);
      ("analysis", Test_analysis.tests);
      ("cost", Test_cost.tests);
      ("exec", Test_exec.tests);
      ("obs", Test_obs.tests);
      ("server", Test_server.tests);
      ("fault", Test_fault.tests);
    ]
