(* The sharded fleet: partition soundness (split invariants, shardable
   detection), the router's scatter-gather COUNT (sharded exact equals
   single-node, estimates bit-reproducible for fixed seed and shard
   count, cross-shard fallback, worker crash degrading — never
   hanging — and restart recovery over the LOAD re-push), the closed
   Wire.Verb codec, the unified client policy surface, the Api.Request
   builder, and per-tenant admission quotas. *)

module Api = Approxcount.Api
module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Relation = Ac_relational.Relation
module Error = Ac_runtime.Error
module Wire = Ac_server.Wire
module Catalog = Ac_server.Catalog
module Scheduler = Ac_server.Scheduler
module Server = Ac_server.Server
module Client = Ac_server.Client
module Retry_policy = Ac_server.Retry_policy
module Partition = Ac_server.Partition
module Router = Ac_server.Router

(* workers and the router run in this process: a peer hanging up
   mid-write must fail the write, not kill the test binary *)
let () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let tmp_path suffix =
  let f = Filename.temp_file "acq_fleet" suffix in
  Sys.remove f;
  f

let bits_equal a b = Int64.bits_of_float a = Int64.bits_of_float b

let has_prefix prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ---------- in-process workers on real unix sockets ---------- *)

type worker = { wserver : Server.t; wthread : Thread.t; wpath : string }

let start_worker path =
  let server = Server.create () in
  match Server.listen_unix ~force:true ~path () with
  | Error e -> Alcotest.failf "worker listen: %s" (Error.message e)
  | Ok fd ->
      let thread = Thread.create (fun () -> Server.serve server [ fd ]) () in
      { wserver = server; wthread = thread; wpath = path }

let stop_worker w =
  Server.request_stop w.wserver;
  Thread.join w.wthread;
  try Sys.remove w.wpath with Sys_error _ -> ()

(* fast backoff so dead-worker scenarios stay quick *)
let test_policy =
  { Retry_policy.default with backoff_base_ms = 1.0; backoff_cap_ms = 5.0 }

let with_fleet ?(shards = 2) ?(column = 0) f =
  let paths =
    List.init shards (fun i -> tmp_path (Printf.sprintf "-w%d.sock" i))
  in
  let workers = Array.of_list (List.map start_worker paths) in
  let router =
    Router.create ~policy:test_policy ~strategy:Partition.Hash ~column
      (List.map (fun p -> Client.Unix_socket p) paths)
  in
  let config = { Server.default_config with result_cache_capacity = 0 } in
  let server = Server.create ~router ~config () in
  Fun.protect
    ~finally:(fun () ->
      Router.close router;
      (* iterate the array: a test that restarted a worker in place
         (crash/recovery) swapped the record it wants stopped *)
      Array.iter stop_worker workers)
    (fun () -> f server router workers)

let fleet_load server router ~name db =
  ignore (Catalog.add (Server.catalog server) ~name db);
  match Router.distribute router ~name db with
  | Ok sizes -> sizes
  | Error e -> Alcotest.failf "distribute %s: %s" name (Error.message e)

(* router served over a socketpair, as in test_server/test_fault *)
type raw = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  thread : Thread.t;
}

let connect_raw server =
  let client_fd, server_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let thread =
    Thread.create (fun () -> Server.serve_connection server server_fd) ()
  in
  {
    fd = client_fd;
    ic = Unix.in_channel_of_descr client_fd;
    oc = Unix.out_channel_of_descr client_fd;
    thread;
  }

let call_raw client req =
  Wire.write_json client.oc (Wire.request_to_json req);
  match Wire.read_json client.ic with
  | Wire.Msg j -> (
      match Wire.response_of_json j with
      | Ok r -> r
      | Error msg -> Alcotest.failf "bad response: %s" msg)
  | Wire.Eof -> Alcotest.fail "server hung up"
  | Wire.Bad msg -> Alcotest.failf "unparseable response: %s" msg

let disconnect_raw client =
  (try Unix.shutdown client.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  Thread.join client.thread;
  try Unix.close client.fd with Unix.Unix_error _ -> ()

let expect_counted = function
  | Wire.Counted o -> o
  | Wire.Refused { error_class; message; _ } ->
      Alcotest.failf "refused [%s]: %s" error_class message
  | _ -> Alcotest.fail "expected a COUNT response"

let fleet_count conn ?method_ ?(eps = 0.5) ?(delta = 0.25) ~seed ~name q =
  expect_counted
    (call_raw conn
       (Wire.Count (Wire.params ?method_ ~eps ~delta ~seed ~db:(Wire.Named name) q)))

(* ---------- fixtures ---------- *)

let random_db rand ?(universe = 8) ?(edges = 18) () =
  let s = Structure.create ~universe_size:universe in
  Structure.declare s "E" ~arity:2;
  Structure.declare s "R" ~arity:2;
  Structure.declare s "P" ~arity:1;
  let v () = Random.State.int rand universe in
  for _ = 1 to edges do
    Structure.add_fact s "E" [| v (); v () |]
  done;
  for _ = 1 to edges / 2 do
    Structure.add_fact s "R" [| v (); v () |]
  done;
  for _ = 1 to 3 do
    Structure.add_fact s "P" [| v () |]
  done;
  s

(* a query shardable on column 0 by construction: the free variable 0
   sits at column 0 of every predicate atom *)
let star_query rand =
  let k = 1 + Random.State.int rand 3 in
  let atoms = List.init k (fun i -> Ecq.Atom ("E", [| 0; i + 1 |])) in
  let neg =
    if Random.State.bool rand then
      [ Ecq.Neg_atom ("R", [| 0; 1 + Random.State.int rand k |]) ]
    else []
  in
  let diseqs =
    if k >= 2 && Random.State.bool rand then [ Ecq.Diseq (1, 2) ] else []
  in
  let num_free = 1 + Random.State.int rand (k + 1) in
  Ecq.make ~num_free ~num_vars:(k + 1) (atoms @ neg @ diseqs)

let local_exact q db =
  match Api.run (Api.request ~method_:Api.Exact ~seed:1 ~jobs:1 q db) with
  | Ok r -> r.Api.estimate
  | Error e -> Alcotest.failf "local exact failed: %s" (Error.message e)

(* ---------- the closed verb alphabet ---------- *)

let prop_verb_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"Wire.Verb codec is total and injective"
    (QCheck2.Gen.oneofl Wire.Verb.all)
    (fun v ->
      match Wire.Verb.of_string (Wire.Verb.to_string v) with
      | Some v' -> v' = v
      | None -> false)

let test_verb_alphabet () =
  Alcotest.(check int) "11 verbs" 11 (List.length Wire.Verb.all);
  let names = List.map Wire.Verb.to_string Wire.Verb.all in
  Alcotest.(check int) "names are distinct"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "off-alphabet is None" true
    (Wire.Verb.of_string "EXPLODE" = None);
  (* LOAD is idempotent (safe to resend after a transport fault) *)
  Alcotest.(check bool) "LOAD idempotent" true
    (Wire.idempotent (Wire.Load { name = "g"; text = "universe 1\n" }))

(* ---------- partition invariants ---------- *)

let test_partition_spec_codec () =
  List.iter
    (fun (s, expect) ->
      match Partition.spec_of_string s with
      | Ok spec ->
          Alcotest.(check string)
            (Printf.sprintf "spec %S" s)
            expect
            (Partition.spec_to_string spec)
      | Error msg -> Alcotest.failf "spec %S rejected: %s" s msg)
    [
      ("hash", "hash:0:1");
      ("range:2", "range:2:1");
      ("hash:1:4", "hash:1:4");
    ];
  (match Partition.spec_of_string "mod:0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown strategy accepted");
  match Partition.spec_of_string "hash:-1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative column accepted"

let test_partition_invariants () =
  let rand = Random.State.make [| 71 |] in
  for _ = 1 to 25 do
    let db = random_db rand () in
    let universe = Structure.universe_size db in
    let strategy =
      if Random.State.bool rand then Partition.Hash else Partition.Range
    in
    let column = Random.State.int rand 2 in
    let shards = 1 + Random.State.int rand 3 in
    let spec = Partition.make ~strategy ~column ~shards in
    let parts = Partition.split spec db in
    Alcotest.(check int) "one structure per shard" shards (Array.length parts);
    Array.iter
      (fun p ->
        Alcotest.(check int) "full universe" universe (Structure.universe_size p);
        Alcotest.(check (list string))
          "full signature" (Structure.symbols db) (Structure.symbols p))
      parts;
    List.iter
      (fun sym ->
        let original =
          List.sort compare (Relation.to_list (Structure.relation db sym))
        in
        if Structure.arity_of db sym <= column then
          (* narrow relations are replicated to every shard *)
          Array.iter
            (fun p ->
              Alcotest.(check bool) (sym ^ " replicated") true
                (List.sort compare (Relation.to_list (Structure.relation p sym))
                = original))
            parts
        else begin
          (* each fact lives in exactly the shard shard_of assigns *)
          Array.iteri
            (fun i p ->
              Relation.iter
                (fun tuple ->
                  Alcotest.(check int)
                    (Printf.sprintf "%s fact routed by column %d" sym column)
                    (Partition.shard_of spec ~universe_size:universe
                       tuple.(column))
                    i)
                (Structure.relation p sym))
            parts;
          (* and the union of the shards is the original, exactly *)
          let reunited =
            Array.to_list parts
            |> List.concat_map (fun p ->
                   Relation.to_list (Structure.relation p sym))
            |> List.sort compare
          in
          Alcotest.(check bool) (sym ^ " facts partitioned") true
            (reunited = original)
        end)
      (Structure.symbols db);
    (* shard_of is total on [0, shards) *)
    for v = 0 to universe - 1 do
      let s = Partition.shard_of spec ~universe_size:universe v in
      Alcotest.(check bool) "shard_of in range" true (s >= 0 && s < shards)
    done
  done

let test_shardable_detection () =
  let spec0 = Partition.make ~strategy:Partition.Hash ~column:0 ~shards:2 in
  let spec1 = Partition.make ~strategy:Partition.Hash ~column:1 ~shards:2 in
  let ok spec q =
    match Partition.shardable spec (Ecq.parse q) with
    | Ok x -> x
    | Error msg -> Alcotest.failf "%S should shard: %s" q msg
  in
  let rejected spec q =
    match Partition.shardable spec (Ecq.parse q) with
    | Error _ -> ()
    | Ok x -> Alcotest.failf "%S should not shard (got var %d)" q x
  in
  Alcotest.(check int) "star on x" 0
    (ok spec0 "ans(x,y,z) :- E(x,y), E(x,z), y != z");
  Alcotest.(check int) "anchored negation" 0
    (ok spec0 "ans(x,y) :- E(x,y), !R(x,y)");
  Alcotest.(check int) "column 1 anchor" 0
    (ok spec1 "ans(x,y) :- E(y,x), R(z,x)");
  (* the path query crosses shard boundaries: y at column 0 of E(y,z) *)
  rejected spec0 "ans(x,y) :- E(x,y), E(y,z), x != z";
  (* an unanchored negation could hold in one shard and fail globally *)
  rejected spec0 "ans(x,y) :- E(x,y), !R(y,x)";
  (* the anchor must be free, or answers repeat across shards *)
  rejected spec0 "ans(y) :- E(x,y), E(x,z)";
  (* no positive atom pins a shard *)
  match
    Partition.shardable spec0
      (Ecq.make ~num_free:1 ~num_vars:1 [ Ecq.Neg_atom ("P", [| 0 |]) ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "all-negative query accepted"

(* ---------- differential: sharded exact = single-node ---------- *)

let test_sharded_exact_matches_single () =
  let rand = Random.State.make [| 2026 |] in
  with_fleet ~shards:2 (fun server router _workers ->
      let conn = connect_raw server in
      Fun.protect
        ~finally:(fun () -> disconnect_raw conn)
        (fun () ->
          for case = 0 to 14 do
            let q = star_query rand in
            let db = random_db rand () in
            let name = Printf.sprintf "g%d" case in
            let sizes = fleet_load server router ~name db in
            Alcotest.(check int) "one shard per worker" 2 (Array.length sizes);
            (match Router.plan router q with
            | Ok _ -> ()
            | Error msg -> Alcotest.failf "star query not shardable: %s" msg);
            let expected = local_exact q db in
            let o =
              fleet_count conn ~method_:Api.Exact ~seed:1 ~name (Ecq.to_string q)
            in
            Alcotest.(check bool) "exact" true o.Wire.exact;
            Alcotest.(check bool) "not degraded" false o.Wire.degraded;
            Alcotest.(check (float 0.0))
              (Printf.sprintf "case %d: sharded exact = single-node" case)
              expected o.Wire.estimate
          done))

(* ---------- reproducibility: fixed seed + shard count ---------- *)

let estimate_query = "ans(x,y,z) :- E(x,y), E(x,z), y != z"

let estimate_db () =
  let rand = Random.State.make [| 909 |] in
  random_db rand ~universe:24 ~edges:140 ()

let run_estimate server router =
  ignore router;
  let conn = connect_raw server in
  Fun.protect
    ~finally:(fun () -> disconnect_raw conn)
    (fun () -> fleet_count conn ~seed:123 ~name:"g" estimate_query)

let test_sharded_estimate_reproducible () =
  let first =
    with_fleet ~shards:2 (fun server router _ ->
        ignore (fleet_load server router ~name:"g" (estimate_db ()));
        let o1 = run_estimate server router in
        let o2 = run_estimate server router in
        Alcotest.(check bool) "same fleet, same bits" true
          (bits_equal o1.Wire.estimate o2.Wire.estimate);
        Alcotest.(check int) "seed is the replay handle" 123 o1.Wire.seed;
        Alcotest.(check bool) "not degraded" false o1.Wire.degraded;
        o1.Wire.estimate)
  in
  (* a brand-new fleet with the same shard count reproduces the bits:
     the run is a function of (root seed, shard count) alone *)
  let second =
    with_fleet ~shards:2 (fun server router _ ->
        ignore (fleet_load server router ~name:"g" (estimate_db ()));
        (run_estimate server router).Wire.estimate)
  in
  Alcotest.(check bool) "fresh fleet, same bits" true (bits_equal first second)

(* ---------- cross-shard fallback ---------- *)

let test_cross_shard_fallback () =
  let rand = Random.State.make [| 313 |] in
  let db = random_db rand ~universe:10 ~edges:30 () in
  let path_query = "ans(x,y) :- E(x,y), E(y,z), x != z" in
  with_fleet ~shards:2 (fun server router _ ->
      ignore (fleet_load server router ~name:"g" db);
      (match Router.plan router (Ecq.parse path_query) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "path query misclassified as shardable");
      let conn = connect_raw server in
      Fun.protect
        ~finally:(fun () -> disconnect_raw conn)
        (fun () ->
          (* the fallback is plain local execution: bit-identical to a
             router-less server answering the same seeded request *)
          let o = fleet_count conn ~seed:55 ~name:"g" path_query in
          let plain = Server.create () in
          ignore (Catalog.add (Server.catalog plain) ~name:"g" db);
          let pconn = connect_raw plain in
          let expected =
            Fun.protect
              ~finally:(fun () -> disconnect_raw pconn)
              (fun () -> fleet_count pconn ~seed:55 ~name:"g" path_query)
          in
          Alcotest.(check bool) "fallback = local bits" true
            (bits_equal expected.Wire.estimate o.Wire.estimate);
          Alcotest.(check bool) "not degraded" false o.Wire.degraded;
          (* a database never distributed also answers locally *)
          let rand2 = Random.State.make [| 314 |] in
          let other = random_db rand2 () in
          ignore (Catalog.add (Server.catalog server) ~name:"undistributed" other);
          let o2 =
            fleet_count conn ~method_:Api.Exact ~seed:1 ~name:"undistributed"
              estimate_query
          in
          Alcotest.(check (float 0.0)) "undistributed db runs locally"
            (local_exact (Ecq.parse estimate_query) other)
            o2.Wire.estimate))

(* ---------- worker crash: typed degradation, then recovery ---------- *)

let test_worker_crash_degrades () =
  let rand = Random.State.make [| 414 |] in
  let db = random_db rand ~universe:10 ~edges:30 () in
  with_fleet ~shards:2 (fun server router workers ->
      ignore (fleet_load server router ~name:"g" db);
      let conn = connect_raw server in
      Fun.protect
        ~finally:(fun () -> disconnect_raw conn)
        (fun () ->
          let q = estimate_query in
          let healthy = fleet_count conn ~method_:Api.Exact ~seed:1 ~name:"g" q in
          Alcotest.(check bool) "healthy fleet" false healthy.Wire.degraded;
          stop_worker workers.(1);
          (* the dead shard becomes an attempt entry on a degraded
             answer — a partial failure is typed, never a hang *)
          let o = fleet_count conn ~method_:Api.Exact ~seed:1 ~name:"g" q in
          Alcotest.(check bool) "degraded" true o.Wire.degraded;
          Alcotest.(check bool) "no guarantee" false o.Wire.guarantee;
          Alcotest.(check bool) "dead shard named in attempts" true
            (List.exists
               (fun (a : Wire.attempt) -> has_prefix "shard:" a.Wire.rung)
               o.Wire.attempts);
          Alcotest.(check bool) "surviving shards still sum" true
            (o.Wire.estimate <= healthy.Wire.estimate);
          (* restart: a fresh worker on the same address has an empty
             catalog; the router re-pushes the cached shard text on the
             unknown-database refusal and the fleet heals *)
          workers.(1) <- start_worker workers.(1).wpath;
          let back = fleet_count conn ~method_:Api.Exact ~seed:1 ~name:"g" q in
          Alcotest.(check bool) "recovered" false back.Wire.degraded;
          Alcotest.(check (float 0.0)) "recovered bits"
            healthy.Wire.estimate back.Wire.estimate))

(* ---------- unified client surface ---------- *)

let test_retry_policy_surface () =
  Alcotest.(check bool) "none is plain" false (Retry_policy.retrying Retry_policy.none);
  Alcotest.(check bool) "default retries" true
    (Retry_policy.retrying Retry_policy.default);
  Alcotest.(check int) "default attempts" 4 Retry_policy.default.Retry_policy.attempts;
  (* a one-attempt policy with a deadline still needs the durable call
     path, or the deadline would silently be dropped *)
  Alcotest.(check bool) "deadline engages" true
    (Retry_policy.retrying
       { Retry_policy.none with deadline_ms = Some 100 });
  Alcotest.(check bool) "read timeout engages" true
    (Retry_policy.retrying
       { Retry_policy.none with read_timeout_ms = Some 100 });
  (* the deprecated Durable alias maps onto the policy surface *)
  let c = Client.Durable.default_config in
  Alcotest.(check int) "Durable default = 3 retries" 3 c.Client.Durable.retries

let test_policy_none_matches_plain () =
  let path = tmp_path ".sock" in
  let w = start_worker path in
  let rand = Random.State.make [| 515 |] in
  let db = random_db rand () in
  ignore (Catalog.add (Server.catalog w.wserver) ~name:"g" db);
  Fun.protect
    ~finally:(fun () -> stop_worker w)
    (fun () ->
      let count policy =
        let client =
          match Client.connect ?policy (Client.Unix_socket path) with
          | Ok c -> c
          | Error e -> Alcotest.failf "connect: %s" (Error.message e)
        in
        Fun.protect
          ~finally:(fun () -> Client.close client)
          (fun () ->
            match
              Client.call client
                (Wire.Count
                   (Wire.params ~method_:Api.Exact ~seed:1
                      ~db:(Wire.Named "g") estimate_query))
            with
            | Ok (Wire.Counted o) -> o.Wire.estimate
            | Ok _ -> Alcotest.fail "expected a COUNT response"
            | Error e -> Alcotest.failf "call: %s" (Error.message e))
      in
      let plain = count None in
      let policied = count (Some test_policy) in
      Alcotest.(check (float 0.0)) "one surface, same answer" plain policied)

(* ---------- the Api.Request builder ---------- *)

let test_request_builder_equiv () =
  let rand = Random.State.make [| 616 |] in
  let q = Ecq.parse estimate_query in
  let db = random_db rand ~universe:16 ~edges:60 () in
  let via_constructor =
    Api.request ~eps:0.5 ~delta:0.25 ~seed:9 ~jobs:1 q db
  in
  let via_builder =
    Api.Request.make q db
    |> Api.Request.with_eps 0.5
    |> Api.Request.with_delta 0.25
    |> Api.Request.with_seed (Some 9)
    |> Api.Request.with_jobs (Some 1)
  in
  match (Api.run via_constructor, Api.run via_builder) with
  | Ok a, Ok b ->
      Alcotest.(check bool) "builder = constructor, bit-identical" true
        (bits_equal a.Api.estimate b.Api.estimate)
  | Error e, _ | _, Error e ->
      Alcotest.failf "request failed: %s" (Error.message e)

(* ---------- per-tenant quotas ---------- *)

let test_tenant_quota () =
  let s = Scheduler.create ~capacity:4 ~tenant_quota:1 () in
  let m = Mutex.create () and c = Condition.create () in
  let started = ref false and release = ref false in
  let holder =
    Thread.create
      (fun () ->
        ignore
          (Scheduler.submit s ~label:"hold" ~tenant:"noisy" (fun _ ->
               Mutex.lock m;
               started := true;
               Condition.broadcast c;
               while not !release do
                 Condition.wait c m
               done;
               Mutex.unlock m)))
      ()
  in
  Mutex.lock m;
  while not !started do
    Condition.wait c m
  done;
  Mutex.unlock m;
  (match Scheduler.submit s ~label:"burst" ~tenant:"noisy" (fun _ -> ()) with
  | Error (Error.Overloaded _) -> ()
  | Ok _ -> Alcotest.fail "tenant quota not enforced"
  | Error e -> Alcotest.failf "wrong class: %s" (Error.class_name e));
  (match Scheduler.submit s ~label:"other" ~tenant:"quiet" (fun _ -> ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "other tenant rejected: %s" (Error.message e));
  (match Scheduler.submit s ~label:"anon" (fun _ -> ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "anonymous rejected: %s" (Error.message e));
  Mutex.lock m;
  release := true;
  Condition.broadcast c;
  Mutex.unlock m;
  Thread.join holder;
  let st = Scheduler.stats s in
  Alcotest.(check int) "one tenant rejection" 1 st.Scheduler.tenant_rejected;
  Alcotest.(check int) "admitted the rest" 3 st.Scheduler.admitted

let tests =
  [
    QCheck_alcotest.to_alcotest prop_verb_roundtrip;
    Alcotest.test_case "verb alphabet is closed" `Quick test_verb_alphabet;
    Alcotest.test_case "partition spec codec" `Quick test_partition_spec_codec;
    Alcotest.test_case "partition invariants" `Quick test_partition_invariants;
    Alcotest.test_case "shardable detection" `Quick test_shardable_detection;
    Alcotest.test_case "sharded exact = single-node" `Quick
      test_sharded_exact_matches_single;
    Alcotest.test_case "estimates reproducible per (seed, shards)" `Quick
      test_sharded_estimate_reproducible;
    Alcotest.test_case "cross-shard fallback is local" `Quick
      test_cross_shard_fallback;
    Alcotest.test_case "worker crash degrades, restart heals" `Quick
      test_worker_crash_degrades;
    Alcotest.test_case "retry policy surface" `Quick test_retry_policy_surface;
    Alcotest.test_case "policy-less client unchanged" `Quick
      test_policy_none_matches_plain;
    Alcotest.test_case "Api.Request builder" `Quick test_request_builder_equiv;
    Alcotest.test_case "per-tenant quotas" `Quick test_tenant_quota;
  ]
