(* The static query-analysis engine: golden diagnostics per QL code
   (positive and negative instance each), span tracking through
   Ecq.parse_spans, classification/planner agreement, and qcheck
   properties tying the analysis to the counting engines. *)

module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Budget = Ac_runtime.Budget
module Analysis = Ac_analysis.Report
module Diagnostic = Ac_analysis.Diagnostic
module Classification = Ac_analysis.Classification
module Classify = Ac_analysis.Classify
module Planner = Approxcount.Planner
module Exact = Approxcount.Exact
module QF = Ac_workload.Query_families

let contains_sub ~sub s =
  let ls = String.length sub and l = String.length s in
  let rec go i = i + ls <= l && (String.sub s i ls = sub || go (i + 1)) in
  go 0

let codes report =
  List.map (fun d -> d.Diagnostic.code) report.Analysis.diagnostics

let has code report = List.mem code (codes report)

let check_has name code text =
  let report = Analysis.analyze_text text in
  if not (has code report) then
    Alcotest.failf "%s: expected %s on %S" name (Diagnostic.code_id code) text

let check_lacks name code text =
  let report = Analysis.analyze_text text in
  if has code report then
    Alcotest.failf "%s: unexpected %s on %S" name (Diagnostic.code_id code) text

(* ---------- golden positive/negative per code ---------- *)

let test_ql000_syntax () =
  let report = Analysis.analyze_text "ans(x) :- E(x y)" in
  (match report.Analysis.diagnostics with
  | [ d ] ->
      Alcotest.(check string) "code" "QL000" (Diagnostic.code_id d.Diagnostic.code);
      Alcotest.(check bool) "is error" true (Diagnostic.is_error d);
      (match d.Diagnostic.span with
      | Some { Diagnostic.start; stop } ->
          Alcotest.(check int) "offset of the bad token" 14 start;
          Alcotest.(check bool) "non-empty span" true (stop > start)
      | None -> Alcotest.fail "QL000 lost its span")
  | ds -> Alcotest.failf "expected exactly one diagnostic, got %d" (List.length ds));
  Alcotest.(check int) "exit 1" 1 (Analysis.exit_status report);
  check_lacks "ql000-neg" Diagnostic.Syntax_error "ans(x) :- E(x, y)"

let test_ql001_unused () =
  check_has "ql001-pos" Diagnostic.Unused_variable "ans(x) :- E(x, y), E(y, z)";
  (* z occurs twice: not pure projection *)
  check_lacks "ql001-neg" Diagnostic.Unused_variable
    "ans(x) :- E(x, y), E(y, z), E(z, x)";
  (* a single-occurrence variable in a NEGATED atom is not projection *)
  check_lacks "ql001-neg-negated" Diagnostic.Unused_variable
    "ans(x) :- E(x, y), E(y, x), !R(x, z), P(z)"

let test_ql002_disconnected () =
  check_has "ql002-pos" Diagnostic.Disconnected "ans(x, y) :- E(x, y), R(z, w)";
  check_lacks "ql002-neg" Diagnostic.Disconnected "ans(x, y) :- E(x, y), R(y, z)";
  (* a disequality alone connects components: no cartesian product *)
  check_lacks "ql002-diseq-connects" Diagnostic.Disconnected
    "ans(x, y) :- E(x, y), R(z, w), x != z"

let test_ql003_degenerate_diseq () =
  (* duplicate disequality, structural path *)
  check_has "ql003-dup" Diagnostic.Diseq_degenerate
    "ans(x) :- E(x, y), x != y, y != x";
  check_lacks "ql003-neg" Diagnostic.Diseq_degenerate "ans(x) :- E(x, y), x != y";
  (* contradictory x != x: parse-time detection with a span *)
  let report = Analysis.analyze_text "ans(x) :- E(x, y), x != x" in
  (match report.Analysis.diagnostics with
  | [ d ] ->
      Alcotest.(check string) "code" "QL003" (Diagnostic.code_id d.Diagnostic.code);
      Alcotest.(check bool) "severity error" true (Diagnostic.is_error d);
      (match d.Diagnostic.span with
      | Some { Diagnostic.start; stop } ->
          Alcotest.(check string) "span covers the diseq" "x != x"
            (String.sub "ans(x) :- E(x, y), x != x" start (stop - start))
      | None -> Alcotest.fail "contradictory diseq lost its span")
  | _ -> Alcotest.fail "expected exactly the QL003 diagnostic");
  (* the same contradiction reached through equality unification *)
  let report2 = Analysis.analyze_text "ans(x) :- E(x, y), x = y, x != y" in
  Alcotest.(check bool) "via equality" true (has Diagnostic.Diseq_degenerate report2);
  Alcotest.(check int) "exit 1" 1 (Analysis.exit_status report2)

let test_ql004_duplicate_atom () =
  check_has "ql004-pos" Diagnostic.Duplicate_atom "ans(x) :- E(x, y), E(x, y)";
  check_lacks "ql004-neg" Diagnostic.Duplicate_atom "ans(x) :- E(x, y), E(y, x)";
  (* same symbol, different polarity over different vars: no duplicate *)
  check_lacks "ql004-polarity" Diagnostic.Duplicate_atom
    "ans(x) :- E(x, y), !E(y, x)"

let test_ql005_negated_twin () =
  let report = Analysis.analyze_text "ans(x) :- E(x, y), !E(x, y)" in
  Alcotest.(check bool) "pos" true (has Diagnostic.Negated_twin report);
  Alcotest.(check int) "exit 1" 1 (Analysis.exit_status report);
  let c = Analysis.classification_exn report in
  (match c.Classification.always_empty with
  | Some w ->
      Alcotest.(check string) "witness relation" "E" w.Classification.relation;
      Alcotest.(check int) "positive atom index" 0 w.Classification.pos_index;
      Alcotest.(check int) "negated atom index" 1 w.Classification.neg_index
  | None -> Alcotest.fail "classification lost the emptiness witness");
  Alcotest.(check bool) "regime is exact-empty" true
    (c.Classification.regime = Classification.Exact_empty);
  check_lacks "ql005-neg" Diagnostic.Negated_twin "ans(x) :- E(x, y), !E(y, x)"

let mini_db () =
  let s = Structure.create ~universe_size:3 in
  Structure.declare s "E" ~arity:2;
  Structure.declare s "Z" ~arity:2;
  Structure.add_fact s "E" [| 0; 1 |];
  Structure.add_fact s "E" [| 1; 2 |];
  s

let test_ql006_signature () =
  let db = mini_db () in
  let q = Ecq.parse "ans(x) :- E(x, y), Q(y, z)" in
  let report = Analysis.analyze ~db q in
  Alcotest.(check bool) "missing symbol" true (has Diagnostic.Signature_mismatch report);
  Alcotest.(check int) "exit 1" 1 (Analysis.exit_status report);
  let q_arity = Ecq.parse "ans(x) :- E(x, y, z)" in
  Alcotest.(check bool) "arity conflict" true
    (has Diagnostic.Signature_mismatch (Analysis.analyze ~db q_arity));
  Alcotest.(check bool) "compatible query clean" false
    (has Diagnostic.Signature_mismatch
       (Analysis.analyze ~db (Ecq.parse "ans(x) :- E(x, y)")));
  (* without a database the check cannot run *)
  Alcotest.(check bool) "no db, no QL006" false
    (has Diagnostic.Signature_mismatch (Analysis.analyze q))

let test_ql007_star_size () =
  check_has "ql007-pos" Diagnostic.Star_size
    "ans(a, b, c, d) :- E(y, a), E(y, b), E(y, c), E(y, d), a != b";
  check_lacks "ql007-neg" Diagnostic.Star_size
    "ans(x) :- F(x, y), F(x, z), y != z"

let test_ql008_width () =
  let report = Analysis.analyze (QF.clique_query ~num_free:2 6) in
  Alcotest.(check bool) "clique-6 blows up" true (has Diagnostic.Width_blowup report);
  Alcotest.(check bool) "clique-4 fine" false
    (has Diagnostic.Width_blowup (Analysis.analyze (QF.clique_query ~num_free:2 4)))

let test_ql009_unguarded () =
  check_has "ql009-pos" Diagnostic.Unguarded_variable "ans(x, y) :- E(x, z), y != z";
  check_lacks "ql009-neg" Diagnostic.Unguarded_variable "ans(x, y) :- E(x, y)"

let test_ql010_empty_relation () =
  let db = mini_db () in
  let q = Ecq.parse "ans(x) :- E(x, y), Z(y, z)" in
  Alcotest.(check bool) "declared-but-empty" true
    (has Diagnostic.Empty_relation (Analysis.analyze ~db q));
  Alcotest.(check bool) "nonempty relation clean" false
    (has Diagnostic.Empty_relation
       (Analysis.analyze ~db (Ecq.parse "ans(x) :- E(x, y)")));
  (* a db-level fact, not a query defect: severity stays below error *)
  Alcotest.(check int) "exit 0" 0 (Analysis.exit_status (Analysis.analyze ~db q))

let test_ql011_quantifier_free () =
  check_has "ql011-pos" Diagnostic.Quantifier_free "ans(x, y) :- E(x, y), R(y, x)";
  check_lacks "ql011-diseq" Diagnostic.Quantifier_free
    "ans(x, y) :- E(x, y), x != y";
  check_lacks "ql011-existential" Diagnostic.Quantifier_free
    "ans(x) :- E(x, y)"

(* QL012 needs measured stats predicting > 10^7 answers: two disjoint
   4000-tuple relations under a cartesian product bound 1.6·10^7. *)
let test_ql012_output_blowup () =
  let s = Structure.create ~universe_size:4000 in
  Structure.declare s "E" ~arity:2;
  Structure.declare s "R" ~arity:2;
  for i = 0 to 3999 do
    Structure.add_fact s "E" [| i; i |];
    Structure.add_fact s "R" [| i; i |]
  done;
  let q = Ecq.parse "ans(x, y, z, w) :- E(x, y), R(z, w)" in
  let report = Analysis.analyze ~db:s q in
  Alcotest.(check bool) "blow-up flagged" true
    (has Diagnostic.Output_blowup report);
  (* the witness is the instantiated bound, and severity stays warning *)
  let d =
    List.find
      (fun d -> d.Diagnostic.code = Diagnostic.Output_blowup)
      report.Analysis.diagnostics
  in
  Alcotest.(check bool) "message carries the bound" true
    (contains_sub ~sub:"1.6e+07" d.Diagnostic.message);
  Alcotest.(check int) "exit 0" 0 (Analysis.exit_status report);
  (* a single small join stays quiet *)
  Alcotest.(check bool) "small bound clean" false
    (has Diagnostic.Output_blowup
       (Analysis.analyze ~db:s (Ecq.parse "ans(x) :- E(x, y)")));
  (* db-less analysis has no cost, hence no QL012 even on wide queries *)
  Alcotest.(check bool) "no db, no QL012" false
    (has Diagnostic.Output_blowup (Analysis.analyze q))

(* QL013: a negated binary atom over a 5000-element universe spans
   2.5·10^7 complement tuples, above the 2·10^7 materialisation cap. *)
let test_ql013_complement_blowup () =
  let blown = Structure.create ~universe_size:5000 in
  Structure.declare blown "E" ~arity:2;
  Structure.declare blown "R" ~arity:2;
  Structure.add_fact blown "E" [| 0; 1 |];
  let q = Ecq.parse "ans(x, y) :- E(x, y), !R(x, y)" in
  let report = Analysis.analyze ~db:blown q in
  Alcotest.(check bool) "cap flagged" true
    (has Diagnostic.Complement_blowup report);
  Alcotest.(check int) "exit 0" 0 (Analysis.exit_status report);
  let small = Structure.create ~universe_size:100 in
  Structure.declare small "E" ~arity:2;
  Structure.declare small "R" ~arity:2;
  Structure.add_fact small "E" [| 0; 1 |];
  Alcotest.(check bool) "small universe clean" false
    (has Diagnostic.Complement_blowup (Analysis.analyze ~db:small q));
  Alcotest.(check bool) "positive atoms never flagged" false
    (has Diagnostic.Complement_blowup
       (Analysis.analyze ~db:blown (Ecq.parse "ans(x, y) :- E(x, y)")));
  Alcotest.(check bool) "no db, no QL013" false
    (has Diagnostic.Complement_blowup (Analysis.analyze q))

(* ---------- spans through parse_spans ---------- *)

let test_spans_align () =
  let text = "ans(x) :- E(x, y), E(y, z), x != z" in
  let q, spans = Ecq.parse_spans text in
  Alcotest.(check int) "one span per atom" (List.length (Ecq.atoms q))
    (Array.length spans);
  let slice (start, stop) = String.sub text start (stop - start) in
  Alcotest.(check (list string))
    "spans recover the source atoms"
    [ "E(x, y)"; "E(y, z)"; "x != z" ]
    (List.map slice (Array.to_list spans));
  (* the QL001 diagnostic points at the atom that owns the variable *)
  let text2 = "ans(x) :- E(x, y), E(y, z)" in
  let report = Analysis.analyze_text text2 in
  match
    List.find_opt
      (fun d -> d.Diagnostic.code = Diagnostic.Unused_variable)
      report.Analysis.diagnostics
  with
  | Some { Diagnostic.span = Some { Diagnostic.start; stop }; _ } ->
      Alcotest.(check string) "diagnostic span" "E(y, z)"
        (String.sub text2 start (stop - start))
  | _ -> Alcotest.fail "QL001 with a span expected"

let test_parse_error_positions () =
  (match Ecq.parse_spans "ans(x) :- E(x y)" with
  | exception Ecq.Parse_error pe ->
      Alcotest.(check int) "offset" 14 pe.Ecq.offset;
      Alcotest.(check string) "token" "y" pe.Ecq.token
  | _ -> Alcotest.fail "expected Parse_error");
  (match Ecq.parse_spans "ans(x) :- E(x, y)," with
  | exception Ecq.Parse_error pe ->
      Alcotest.(check int) "eof offset" 18 pe.Ecq.offset;
      Alcotest.(check string) "eof token" "" pe.Ecq.token
  | _ -> Alcotest.fail "expected Parse_error at eof");
  (* parse keeps raising Failure, with the position in the message *)
  match Ecq.parse "ans(x) :- E(x y)" with
  | exception Failure msg ->
      Alcotest.(check bool) "offset in message" true
        (contains_sub ~sub:"offset 14" msg)
  | _ -> Alcotest.fail "expected Failure"

(* ---------- classification / planner agreement ---------- *)

let test_decision_from_classification () =
  List.iter
    (fun text ->
      let q = Ecq.parse text in
      let d = Planner.plan q in
      Alcotest.(check string) "reason = describe"
        (Classification.describe d.Planner.classification)
        d.Planner.reason)
    [
      "ans(x) :- E(x, y), E(y, z)";
      "ans(x) :- F(x, y), F(x, z), y != z";
      "ans(x) :- E(x, y), !E(y, x)";
      "ans(x) :- E(x, y), !E(x, y)";
    ];
  (* the statically-empty query plans straight to the exact engine *)
  let d = Planner.plan (Ecq.parse "ans(x) :- E(x, y), !E(x, y)") in
  Alcotest.(check bool) "empty -> Use_exact" true
    (d.Planner.algorithm = Planner.Use_exact)

let test_json_smoke () =
  let report = Analysis.analyze_text "ans(x) :- E(x, y), E(y, z)" in
  let s = Ac_analysis.Json.to_string (Analysis.to_json report) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains_sub ~sub:needle s))
    [ "\"classification\""; "\"diagnostics\""; "\"QL001\""; "\"treewidth\"" ]

(* ---------- qcheck properties ---------- *)

(* A lint-clean query (no Error diagnostics) never makes the planner or
   the governed counter raise: every failure mode is a typed Error. *)
let prop_clean_never_raises =
  QCheck2.Test.make ~count:120 ~name:"lint-clean queries: plan + governed count total"
    (Gen.ecq_with_db ~allow_neg:true ~allow_diseq:true)
    (fun (q, db) ->
      let report = Analysis.analyze ~db q in
      (match Planner.plan q with
      | _ -> ()
      | exception e ->
          QCheck2.Test.fail_reportf "plan raised %s" (Printexc.to_string e));
      if not (Analysis.has_errors report) then (
        let budget = Budget.create ~label:"prop" ~max_ticks:200_000 () in
        let rng = Random.State.make [| 11 |] in
        match
          Planner.count_governed ~budget ~rng ~eps:0.9 ~delta:0.4 q db
        with
        | Ok _ | Error _ -> true
        | exception e ->
            QCheck2.Test.fail_reportf "count_governed raised %s"
              (Printexc.to_string e))
      else true)

(* Grafting a negated twin onto any query makes it statically empty; the
   analysis must say so and the exact engine must count 0. *)
let prop_always_empty_counts_zero =
  QCheck2.Test.make ~count:80 ~name:"negated twin: QL005 + exact count 0"
    (Gen.ecq_with_db ~allow_neg:false ~allow_diseq:true)
    (fun (q, db) ->
      match
        List.find_opt
          (function Ecq.Atom _ -> true | _ -> false)
          (Ecq.atoms q)
      with
      | None -> QCheck2.assume_fail ()
      | Some (Ecq.Atom (name, vs)) ->
          let twin =
            Ecq.make ~num_free:(Ecq.num_free q) ~num_vars:(Ecq.num_vars q)
              (Ecq.atoms q @ [ Ecq.Neg_atom (name, vs) ])
          in
          let report = Analysis.analyze ~db twin in
          if not (has Diagnostic.Negated_twin report) then
            QCheck2.Test.fail_reportf "QL005 missing on a twinned query";
          let c = Analysis.classification_exn report in
          if c.Classification.regime <> Classification.Exact_empty then
            QCheck2.Test.fail_reportf "twinned query not classified Exact_empty";
          (match (Planner.plan twin).Planner.algorithm with
          | Planner.Use_exact -> ()
          | _ -> QCheck2.Test.fail_reportf "planner ignored the emptiness");
          Exact.by_join_projection twin db = 0
      | Some _ -> QCheck2.assume_fail ())

(* Classification depends on the query's structure only: renaming
   (rotating) the existential variables changes no invariant field. *)
let prop_classification_renaming_invariant =
  QCheck2.Test.make ~count:150 ~name:"classification invariant under ∃-renaming"
    (Gen.ecq ~allow_neg:true ~allow_diseq:true)
    (fun q ->
      let free = Ecq.num_free q and n = Ecq.num_vars q in
      let ne = n - free in
      if ne < 2 then QCheck2.assume_fail ()
      else begin
        let rename v = if v < free then v else free + ((v - free + 1) mod ne) in
        let atoms =
          List.map
            (function
              | Ecq.Atom (s, vs) -> Ecq.Atom (s, Array.map rename vs)
              | Ecq.Neg_atom (s, vs) -> Ecq.Neg_atom (s, Array.map rename vs)
              | Ecq.Diseq (i, j) -> Ecq.Diseq (rename i, rename j))
            (Ecq.atoms q)
        in
        let q' = Ecq.make ~num_free:free ~num_vars:n atoms in
        Classification.equal_invariants (Classify.classify q) (Classify.classify q')
      end)

(* ---------- Json.parse (grown for the acqd wire protocol) ---------- *)

module Json = Ac_analysis.Json

let json_testable =
  Alcotest.testable (fun ppf j -> Fmt.string ppf (Json.to_string j)) ( = )

let test_json_parse_values () =
  let ok text expect =
    match Json.parse text with
    | Ok j -> Alcotest.check json_testable text expect j
    | Error e -> Alcotest.failf "%S: %s" text (Json.error_message e)
  in
  ok "null" Json.Null;
  ok "  true " (Json.Bool true);
  ok "-17" (Json.Int (-17));
  ok "3.5e2" (Json.Float 350.0);
  ok "0.0" (Json.Float 0.0);
  ok "1e3" (Json.Float 1000.0);
  ok {|"a\nb\t\"\\"|} (Json.String "a\nb\t\"\\");
  (* é is é, the surrogate pair is 😀 — both must land as UTF-8 *)
  ok {|"é😀"|} (Json.String "\xc3\xa9\xf0\x9f\x98\x80");
  ok "[]" (Json.List []);
  ok "{}" (Json.Obj []);
  ok {|[1,[2,{"k":null}]]|}
    (Json.List [ Json.Int 1; Json.List [ Json.Int 2; Json.Obj [ ("k", Json.Null) ] ] ])

let test_json_parse_offsets () =
  let err text offset =
    match Json.parse text with
    | Ok _ -> Alcotest.failf "%S parsed" text
    | Error e ->
        Alcotest.(check int)
          (Printf.sprintf "offset in %S" text)
          offset e.Json.offset
  in
  err "" 0;
  err "[1," 3;
  err "[1, 2" 5;
  err "{\"a\":1} x" 8;
  err "{\"a\" 1}" 5;
  err "nul" 0;
  (* the depth cap turns adversarial nesting into a parse error *)
  match Json.parse (String.make (Json.max_depth + 10) '[') with
  | Ok _ -> Alcotest.fail "over-deep input accepted"
  | Error e ->
      Alcotest.(check bool) "depth error is positioned" true (e.Json.offset > 0)

let test_json_accessors () =
  let j = Json.Obj [ ("n", Json.Int 7); ("f", Json.Float 2.5) ] in
  Alcotest.(check (option int)) "mem/to_int" (Some 7)
    (Option.bind (Json.mem "n" j) Json.to_int);
  (* ints widen when a float is expected *)
  Alcotest.(check (option (float 0.0))) "int widens" (Some 7.0)
    (Option.bind (Json.mem "n" j) Json.to_float);
  Alcotest.(check (option int)) "missing field" None
    (Option.bind (Json.mem "zzz" j) Json.to_int)

(* Emitter-normal trees: finite floats that survive the %.6g rendering,
   so parse ∘ emit is the identity (the documented contract). *)
let json_gen =
  let open QCheck2.Gen in
  let normal_float =
    map
      (fun f ->
        let f = if Float.is_finite f then f else 0.0 in
        float_of_string (Printf.sprintf "%.6g" f))
      float
  in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun f -> Json.Float f) normal_float;
        map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 8));
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then scalar
         else
           oneof
             [
               scalar;
               map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n / 3)));
               map
                 (fun kvs -> Json.Obj kvs)
                 (list_size (int_range 0 4)
                    (pair
                       (string_size ~gen:printable (int_range 0 6))
                       (self (n / 3))));
             ])

let prop_json_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"Json.parse ∘ Json.to_string = Ok" json_gen
    (fun j ->
      match Json.parse (Json.to_string j) with
      | Ok j' -> j' = j
      | Error e ->
          QCheck2.Test.fail_reportf "parse failed at %d (%s) on %s"
            e.Json.offset e.Json.msg (Json.to_string j))

let prop_json_roundtrip_pretty =
  QCheck2.Test.make ~count:150
    ~name:"Json.parse ∘ Json.to_string_pretty = Ok" json_gen (fun j ->
      match Json.parse (Json.to_string_pretty j) with
      | Ok j' -> j' = j
      | Error e ->
          QCheck2.Test.fail_reportf "parse failed at %d (%s) on %s"
            e.Json.offset e.Json.msg (Json.to_string_pretty j))

let tests =
  [
    Alcotest.test_case "QL000 syntax error + span" `Quick test_ql000_syntax;
    Alcotest.test_case "QL001 unused variable" `Quick test_ql001_unused;
    Alcotest.test_case "QL002 disconnected" `Quick test_ql002_disconnected;
    Alcotest.test_case "QL003 degenerate disequality" `Quick test_ql003_degenerate_diseq;
    Alcotest.test_case "QL004 duplicate atom" `Quick test_ql004_duplicate_atom;
    Alcotest.test_case "QL005 negated twin" `Quick test_ql005_negated_twin;
    Alcotest.test_case "QL006 signature mismatch" `Quick test_ql006_signature;
    Alcotest.test_case "QL007 star size" `Quick test_ql007_star_size;
    Alcotest.test_case "QL008 width blow-up" `Quick test_ql008_width;
    Alcotest.test_case "QL009 unguarded variable" `Quick test_ql009_unguarded;
    Alcotest.test_case "QL010 empty relation" `Quick test_ql010_empty_relation;
    Alcotest.test_case "QL011 quantifier-free" `Quick test_ql011_quantifier_free;
    Alcotest.test_case "QL012 output blow-up" `Quick test_ql012_output_blowup;
    Alcotest.test_case "QL013 complement cap" `Quick test_ql013_complement_blowup;
    Alcotest.test_case "atom spans align with source" `Quick test_spans_align;
    Alcotest.test_case "parse errors carry positions" `Quick test_parse_error_positions;
    Alcotest.test_case "decision = f(classification)" `Quick test_decision_from_classification;
    Alcotest.test_case "report JSON smoke" `Quick test_json_smoke;
    Alcotest.test_case "Json.parse: values" `Quick test_json_parse_values;
    Alcotest.test_case "Json.parse: error offsets" `Quick
      test_json_parse_offsets;
    Alcotest.test_case "Json accessors" `Quick test_json_accessors;
    QCheck_alcotest.to_alcotest prop_clean_never_raises;
    QCheck_alcotest.to_alcotest prop_always_empty_counts_zero;
    QCheck_alcotest.to_alcotest prop_classification_renaming_invariant;
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    QCheck_alcotest.to_alcotest prop_json_roundtrip_pretty;
  ]
