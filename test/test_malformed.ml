(* Malformed inputs must surface as typed errors, never as crashes or
   bare exceptions. *)

module Error = Ac_runtime.Error
module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Structure_io = Ac_relational.Structure_io

let with_temp_file content f =
  let path = Filename.temp_file "acq_test" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      f path)

let expect_parse name result =
  match result with
  | Error (Error.Parse _) -> ()
  | Error e -> Alcotest.failf "%s: wrong class %s" name (Error.class_name e)
  | Ok _ -> Alcotest.failf "%s: accepted" name

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* ---------- query parsing ---------- *)

let test_parse_result_garbage () =
  List.iter
    (fun text -> expect_parse text (Ecq.parse_result text))
    [
      "";
      "ans(x :- E(x, y)";
      "ans(x) :- ";
      "ans(x) :- E(x,, y)";
      "ans(x) :- x != x";
      "ans(x, y) :- E(x, y), x = y";
      "garbage";
    ];
  match Ecq.parse_result "ans(x) :- E(x, y)" with
  | Ok q -> Alcotest.(check int) "good query parses" 1 (Ecq.num_free q)
  | Error e -> Alcotest.failf "rejected valid query: %s" (Error.message e)

(* ---------- database loading ---------- *)

let test_load_result_malformed () =
  let cases =
    [
      ("garbled", "!!not a database!!\n");
      ("no universe", "E 0 1\n");
      ("negative universe", "universe -4\n");
      ("duplicate universe", "universe 3\nuniverse 3\n");
      ("bad element", "universe 3\nE 0 x\n");
      ("element out of range", "universe 3\nE 0 7\n");
      ("arity disagreement", "universe 3\nE 0 1\nE 0 1 2\n");
      ("declared arity disagreement", "universe 3\nrelation E 3\nE 0 1\n");
      ("nullary relation", "universe 3\nrelation E 0\n");
    ]
  in
  List.iter
    (fun (name, content) ->
      with_temp_file content (fun path ->
          expect_parse name (Structure_io.load_result path)))
    cases

let test_load_result_messages () =
  with_temp_file "universe 3\nuniverse 3\n" (fun path ->
      match Structure_io.load_result path with
      | Error (Error.Parse { source; msg }) ->
          Alcotest.(check string) "source is the path" path source;
          Alcotest.(check bool) "message says duplicate" true
            (contains msg "duplicate");
          Alcotest.(check bool) "message has the line number" true
            (contains msg "line 2")
      | _ -> Alcotest.fail "duplicate universe accepted");
  with_temp_file "universe 3\nE 0 1\nE 0 1 2\n" (fun path ->
      match Structure_io.load_result path with
      | Error (Error.Parse { msg; _ }) ->
          Alcotest.(check bool) "message names both arities" true
            (contains msg "3 elements" && contains msg "arity 2")
      | _ -> Alcotest.fail "arity disagreement accepted")

let test_load_result_io () =
  (match Structure_io.load_result "/nonexistent/definitely/missing.txt" with
  | Error (Error.Io _) -> ()
  | Error e -> Alcotest.failf "wrong class %s" (Error.class_name e)
  | Ok _ -> Alcotest.fail "missing file accepted");
  with_temp_file "universe 2\nE 0 1\n" (fun path ->
      match Structure_io.load_result ~max_bytes:4 path with
      | Error (Error.Io { msg; _ }) ->
          Alcotest.(check bool) "cap named in message" true (contains msg "cap")
      | Error e -> Alcotest.failf "wrong class %s" (Error.class_name e)
      | Ok _ -> Alcotest.fail "size cap ignored")

let test_load_result_ok () =
  with_temp_file "# comment\nuniverse 4\nrelation E 2\nE 0 1\nE 2 3\nP 1\n"
    (fun path ->
      match Structure_io.load_result path with
      | Ok db ->
          Alcotest.(check int) "universe" 4 (Structure.universe_size db);
          (* ‖D‖ = 2 relations + 4 universe + (2·2 + 1·1) fact weight *)
          Alcotest.(check int) "‖D‖" 11 (Structure.size db)
      | Error e -> Alcotest.failf "rejected valid file: %s" (Error.message e))

let test_load_raising_variant () =
  (* the raising [load] keeps its Failure contract, now path-prefixed *)
  with_temp_file "universe 3\nuniverse 3\n" (fun path ->
      match Structure_io.load path with
      | _ -> Alcotest.fail "duplicate universe accepted"
      | exception Failure msg ->
          Alcotest.(check bool) "path in message" true (contains msg path));
  match Structure_io.of_string ~max_bytes:2 "universe 3\n" with
  | _ -> Alcotest.fail "of_string cap ignored"
  | exception Failure msg ->
      Alcotest.(check bool) "cap in message" true (contains msg "cap")

(* ---------- streamed databases (acq --db -) ---------- *)

let with_stream content f =
  with_temp_file content (fun path ->
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic))

let test_stream_empty () =
  with_stream "" (fun ic ->
      match Structure_io.of_channel_result ic with
      | Error (Error.Parse { source; _ }) ->
          Alcotest.(check string) "source is the stream name" "<stdin>" source
      | Error e ->
          Alcotest.failf "wrong class %s" (Error.class_name e)
      | Ok _ -> Alcotest.fail "empty stream accepted")

let test_stream_truncated () =
  (* cut off mid-fact: the last line lost a column, tripping the arity
     check exactly like a malformed file would *)
  with_stream "universe 3\nE 0 1\nE 0" (fun ic ->
      expect_parse "truncated stream" (Structure_io.of_channel_result ic));
  with_stream "universe" (fun ic ->
      expect_parse "truncated header" (Structure_io.of_channel_result ic))

let test_stream_cap_and_ok () =
  with_stream "universe 3\nE 0 1\n" (fun ic ->
      match Structure_io.of_channel_result ~max_bytes:4 ic with
      | Error (Error.Io _) -> ()
      | Error e -> Alcotest.failf "wrong class %s" (Error.class_name e)
      | Ok _ -> Alcotest.fail "size cap ignored");
  with_stream "universe 3\nE 0 1\nE 1 2\n" (fun ic ->
      match Structure_io.of_channel_result ~name:"pipe" ic with
      | Ok { Structure_io.db; fingerprint } ->
          Alcotest.(check int) "universe" 3 (Structure.universe_size db);
          Alcotest.(check string) "fingerprint is the structure's"
            (Structure.fingerprint db) fingerprint
      | Error e -> Alcotest.failf "rejected valid stream: %s" (Error.message e))

let tests =
  [
    Alcotest.test_case "parse_result: garbage is a typed Parse error" `Quick
      test_parse_result_garbage;
    Alcotest.test_case "load_result: malformed files are Parse errors" `Quick
      test_load_result_malformed;
    Alcotest.test_case "load_result: messages carry path/line/arity" `Quick
      test_load_result_messages;
    Alcotest.test_case "load_result: missing file and size cap are Io" `Quick
      test_load_result_io;
    Alcotest.test_case "load_result: valid file still loads" `Quick
      test_load_result_ok;
    Alcotest.test_case "load/of_string keep the Failure contract" `Quick
      test_load_raising_variant;
    Alcotest.test_case "of_channel_result: empty stream" `Quick
      test_stream_empty;
    Alcotest.test_case "of_channel_result: truncated stream" `Quick
      test_stream_truncated;
    Alcotest.test_case "of_channel_result: size cap and success" `Quick
      test_stream_cap_and_ok;
  ]
