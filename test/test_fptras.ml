module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Fptras = Approxcount.Fptras
module Exact = Approxcount.Exact
module Colour_oracle = Approxcount.Colour_oracle

(* The three exact baselines agree on random ECQs. *)
let prop_exact_baselines_agree =
  QCheck2.Test.make ~count:150 ~name:"exact baselines agree"
    (Gen.ecq_with_db ~allow_neg:true ~allow_diseq:true)
    (fun (q, db) ->
      let a = Exact.brute_force q db in
      let b = Exact.by_join_projection q db in
      let c = Exact.by_free_enumeration q db in
      a = b && b = c)

(* Oracle-driven exact counting equals the baselines, for every engine. *)
let prop_oracle_exact engine_name engine =
  QCheck2.Test.make ~count:60
    ~name:(Printf.sprintf "exact via oracle (%s)" engine_name)
    QCheck2.Gen.(pair (Gen.ecq_with_db ~allow_neg:true ~allow_diseq:true) (int_range 0 10000))
    (fun ((q, db), seed) ->
      let expected = Exact.by_join_projection q db in
      let r =
        Fptras.exact_count_via_oracle
          ~rng:(Random.State.make [| seed |])
          ~engine ~rounds:48 q db
      in
      int_of_float r.Fptras.estimate = expected)

(* Full approximate pipeline: on these small instances the estimator takes
   its exact path, so the result must equal the truth. *)
let prop_approx_small_exact =
  QCheck2.Test.make ~count:60 ~name:"approx_count exact on small instances"
    QCheck2.Gen.(pair (Gen.ecq_with_db ~allow_neg:true ~allow_diseq:true) (int_range 0 10000))
    (fun ((q, db), seed) ->
      let expected = Exact.by_join_projection q db in
      let r =
        Fptras.approx_count
          ~rng:(Random.State.make [| seed |])
          ~rounds:48 ~eps:0.25 ~delta:0.2 q db
      in
      r.Fptras.exact && int_of_float r.Fptras.estimate = expected)

let test_boolean_queries () =
  let q = Ecq.parse "ans() :- E(x, y), x != y" in
  let db_yes = Structure.of_facts ~universe_size:3 [ ("E", [| 0; 1 |]) ] in
  let db_no = Structure.of_facts ~universe_size:3 [ ("E", [| 0; 0 |]) ] in
  let rng = Random.State.make [| 9 |] in
  let count db =
    (Fptras.approx_count ~rng ~rounds:48 ~eps:0.3 ~delta:0.2 q db).Fptras.estimate
  in
  Alcotest.(check (float 1e-9)) "boolean yes" 1.0 (count db_yes);
  Alcotest.(check (float 1e-9)) "boolean no" 0.0 (count db_no)

let test_friends_medium_accuracy () =
  (* estimator path (answers > cap): accuracy within 2ε with a fixed seed *)
  let rng = Random.State.make [| 17 |] in
  let q = Ac_workload.Query_families.friends () in
  let db = Ac_workload.Dbgen.friends_database ~rng ~n:250 ~avg_degree:6.0 in
  let exact = float_of_int (Exact.by_join_projection q db) in
  let r = Fptras.approx_count ~rng ~eps:0.2 ~delta:0.1 q db in
  let err = Float.abs (r.Fptras.estimate -. exact) /. Float.max exact 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "relative error %.3f (est %.1f vs %f)" err r.Fptras.estimate exact)
    true (err <= 0.4)

let test_star_distinct_estimator_path () =
  let rng = Random.State.make [| 23 |] in
  let q = Ac_workload.Query_families.star_distinct 2 in
  let db =
    Ac_workload.Dbgen.random_structure ~rng ~universe_size:80 [ ("E", 2, 300) ]
  in
  let exact = float_of_int (Exact.by_join_projection q db) in
  let r = Fptras.approx_count ~rng ~eps:0.25 ~delta:0.2 q db in
  let err = Float.abs (r.Fptras.estimate -. exact) /. Float.max exact 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "star2 err %.3f (est %.1f vs %f, level %d)" err
       r.Fptras.estimate exact r.Fptras.level)
    true (err <= 0.5)

let test_zero_answers () =
  let q = Ecq.parse "ans(x) :- E(x, y), !E(x, y)" in
  let db = Structure.of_facts ~universe_size:3 [ ("E", [| 0; 1 |]) ] in
  let rng = Random.State.make [| 3 |] in
  let r = Fptras.approx_count ~rng ~eps:0.3 ~delta:0.2 q db in
  Alcotest.(check (float 1e-9)) "contradictory query" 0.0 r.Fptras.estimate

let test_engines_agree_exact_mode () =
  let q = Ac_workload.Query_families.triangle_negation () in
  let rng = Random.State.make [| 31 |] in
  let db = Ac_workload.Dbgen.random_structure ~rng ~universe_size:12 [ ("E", 2, 30) ] in
  let expected = Exact.by_join_projection q db in
  List.iter
    (fun engine ->
      let r =
        Fptras.approx_count
          ~rng:(Random.State.make [| 37 |])
          ~engine ~rounds:48 ~eps:0.3 ~delta:0.2 q db
      in
      Alcotest.(check int) "engine agrees" expected (int_of_float r.Fptras.estimate))
    [ Colour_oracle.Tree_dp; Colour_oracle.Generic; Colour_oracle.Direct ]

let tests =
  [
    Alcotest.test_case "boolean queries" `Quick test_boolean_queries;
    Alcotest.test_case "zero answers" `Quick test_zero_answers;
    Alcotest.test_case "engines agree (exact mode)" `Quick test_engines_agree_exact_mode;
    Alcotest.test_case "friends medium accuracy" `Slow test_friends_medium_accuracy;
    Alcotest.test_case "star-distinct estimator path" `Slow test_star_distinct_estimator_path;
    QCheck_alcotest.to_alcotest prop_exact_baselines_agree;
    QCheck_alcotest.to_alcotest (prop_oracle_exact "tree_dp" Colour_oracle.Tree_dp);
    QCheck_alcotest.to_alcotest (prop_oracle_exact "generic" Colour_oracle.Generic);
    QCheck_alcotest.to_alcotest (prop_oracle_exact "direct" Colour_oracle.Direct);
    QCheck_alcotest.to_alcotest prop_approx_small_exact;
  ]
