(* The static cost & cardinality analyzer: Rat overflow degradation,
   the restated ACJR repetition formulas pinned to their originals,
   qcheck soundness of the instantiated edge-cover bound against exact
   counts, estimate preservation under cost-driven chain reordering,
   ladder shape, and catalog distinct counts. *)

module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Rat = Ac_lp.Rat
module Error = Ac_runtime.Error
module Chaos = Ac_runtime.Chaos
module Cardinality = Ac_analysis.Cardinality
module Cost = Ac_analysis.Cost
module Ladder = Ac_analysis.Ladder
module Classify = Ac_analysis.Classify
module Report = Ac_analysis.Report
module Engine = Ac_exec.Engine
module Planner = Approxcount.Planner
module Exact = Approxcount.Exact
module Fpras = Approxcount.Fpras
module Edge_count = Ac_dlm.Edge_count

let analyze_with db q =
  Cost.analyze ~stats:(Cardinality.of_structure db) q (Classify.classify q)

(* ---------- Rat overflow is typed, and the bound degrades ---------- *)

let test_rat_overflow () =
  let huge = Rat.of_int max_int in
  (match Rat.mul huge huge with
  | _ -> Alcotest.fail "expected Rat.Overflow"
  | exception Rat.Overflow -> ());
  (* a near-max denominator sum also overflows, not wraps *)
  let tiny = Rat.make 1 (max_int - 1) in
  (match Rat.add tiny (Rat.make 1 (max_int - 2)) with
  | _ -> Alcotest.fail "expected Rat.Overflow on denominator product"
  | exception Rat.Overflow -> ())

(* ---------- repetition formulas pinned to the originals ----------

   [Cost] sits below [lib/core]/[lib/dlm] in the dependency order and
   restates their trial-count formulas; these checks are what keeps the
   restatements honest. *)

let test_repetition_formulas () =
  List.iter
    (fun delta ->
      Alcotest.(check int)
        (Printf.sprintf "fpras reps at delta=%g" delta)
        (Fpras.repetitions_for ~delta)
        (Cost.fpras_repetitions ~delta);
      Alcotest.(check int)
        (Printf.sprintf "edge-count reps at delta=%g" delta)
        (Edge_count.repetitions_for ~delta)
        (Cost.edge_count_repetitions ~delta))
    [ 0.49; 0.3; 0.1; 0.05; 0.01; 1e-3; 1e-6; 1e-12 ]

(* ---------- bound soundness: 2^bound >= exact count ---------- *)

let prop_bound_sound =
  QCheck2.Test.make ~count:150
    ~name:"instantiated edge-cover bound dominates the exact count"
    (Gen.ecq_with_db ~allow_neg:true ~allow_diseq:true)
    (fun (q, db) ->
      let exact = float_of_int (Exact.by_join_projection q db) in
      let cost = analyze_with db q in
      let b = cost.Cost.query_bound in
      let bound =
        if b.Cost.log2 = Float.neg_infinity then 0.0
        else Float.pow 2.0 b.Cost.log2
      in
      if exact > (bound *. (1.0 +. 1e-9)) +. 1e-6 then
        QCheck2.Test.fail_reportf
          "exact %g > bound %g (log2 %g, exact_lp %b) for %s" exact bound
          b.Cost.log2 b.Cost.exact_lp (Ecq.to_string q)
      else true)

(* Component bounds are sound too: their sum (in log2, product of
   counts) dominates the whole query, which dominates the exact count. *)
let prop_component_bounds_sound =
  QCheck2.Test.make ~count:100
    ~name:"summed component bounds dominate the exact count"
    (Gen.ecq_with_db ~allow_neg:true ~allow_diseq:true)
    (fun (q, db) ->
      let exact = float_of_int (Exact.by_join_projection q db) in
      let cost = analyze_with db q in
      match cost.Cost.component_bounds with
      | [] -> true
      | bs ->
          let total =
            List.fold_left (fun acc b -> acc +. b.Cost.log2) 0.0 bs
          in
          let bound =
            if total = Float.neg_infinity then 0.0 else Float.pow 2.0 total
          in
          if exact > (bound *. (1.0 +. 1e-9)) +. 1e-6 then
            QCheck2.Test.fail_reportf
              "exact %g > product-of-components bound %g for %s" exact bound
              (Ecq.to_string q)
          else true)

(* ---------- estimate preservation under reordering ----------

   An estimate depends only on (rung, seed, eps, delta) — the engine
   seed is split by rung ordinal — so reaching the same rung through
   the costed ladder and through the static chain must produce
   bit-identical values. Chaos-fail every step before the generic-join
   rung in both chains and compare. *)

let reorder_db () =
  let u = 30 in
  let s = Structure.create ~universe_size:u in
  Structure.declare s "E" ~arity:2;
  for i = 0 to u - 1 do
    Structure.add_fact s "E" [| i; ((i * 7) + 3) mod u |];
    Structure.add_fact s "E" [| i; ((i * 11) + 5) mod u |];
    Structure.add_fact s "E" [| (i * 13) mod u; i |]
  done;
  s

let test_estimate_preserving_reorder () =
  let db = reorder_db () in
  let q = Ecq.parse "ans(x, y) :- E(x, y), E(y, z), !E(x, z), x != z" in
  let eps = 0.25 and delta = 0.1 in
  let cost = analyze_with db q in
  let ladder = Ladder.build ~eps ~delta cost in
  (* how many ladder steps precede the first at-eps generic-join *)
  let costed_prefix =
    let rec go n = function
      | [] -> None
      | s :: _
        when s.Ladder.rung = Cost.Generic_join && not s.Ladder.relaxed ->
          Some n
      | _ :: rest -> go (n + 1) rest
    in
    go 0 ladder
  in
  match costed_prefix with
  | None -> Alcotest.fail "ladder lost the generic-join rung"
  | Some k ->
      let run ~cost ~fail_first =
        let chaos =
          Chaos.create
            ~plan:(List.init fail_first (fun i -> (i + 1, Chaos.Fail "forced")))
            ~seed:1 ()
        in
        let exec = Engine.make ~jobs:1 ~seed:42 () in
        match
          Planner.count_governed ~exec ~chaos ?cost ~eps ~delta q db
        with
        | Ok g -> g
        | Error e -> Alcotest.failf "governed run failed: %s" (Error.message e)
      in
      (* static chain for this ECQ: tree-dp, exact, generic, partial *)
      let g_static = run ~cost:None ~fail_first:2 in
      let g_costed = run ~cost:(Some cost) ~fail_first:k in
      Alcotest.(check string)
        "static chain reached generic-join" "generic-join"
        (Planner.rung_name g_static.Planner.rung);
      Alcotest.(check string)
        "costed ladder reached generic-join" "generic-join"
        (Planner.rung_name g_costed.Planner.rung);
      Alcotest.(check bool)
        "bit-identical estimates across chain orders" true
        (Int64.equal
           (Int64.bits_of_float g_static.Planner.estimate)
           (Int64.bits_of_float g_costed.Planner.estimate));
      Alcotest.(check (float 1e-12))
        "eps not relaxed" eps g_costed.Planner.eps_used

(* ---------- the ε-degradation ladder ---------- *)

let test_ladder_shape () =
  let db = reorder_db () in
  let q = Ecq.parse "ans(x, y) :- E(x, y), E(y, z), !E(x, z), x != z" in
  let eps = 0.25 and delta = 0.1 in
  let cost = analyze_with db q in
  let ladder = Ladder.build ~eps ~delta cost in
  (match List.rev ladder with
  | last :: _ ->
      Alcotest.(check string) "ends with partial" "partial"
        (Cost.rung_name last.Ladder.rung)
  | [] -> Alcotest.fail "empty ladder");
  (match ladder with
  | head :: _ ->
      Alcotest.(check string) "head is the chosen rung"
        (Cost.rung_name (Cost.chosen cost))
        (Cost.rung_name head.Ladder.rung)
  | [] -> ());
  List.iter
    (fun s ->
      if s.Ladder.relaxed then begin
        Alcotest.(check bool) "relaxed eps coarser" true (s.Ladder.eps > eps);
        Alcotest.(check bool) "relaxed eps capped" true
          (s.Ladder.eps <= Ladder.eps_cap)
      end
      else
        Alcotest.(check (float 1e-12)) "unrelaxed step at requested eps" eps
          s.Ladder.eps)
    ladder;
  (* a relaxed completion reports the coarser eps but keeps the
     guarantee: chaos-fail every guaranteed at-eps step *)
  let at_eps = List.length (List.filter (fun s -> not s.Ladder.relaxed) ladder) - 1 in
  let chaos =
    Chaos.create
      ~plan:(List.init at_eps (fun i -> (i + 1, Chaos.Fail "forced")))
      ~seed:1 ()
  in
  let exec = Engine.make ~jobs:1 ~seed:7 () in
  match Planner.count_governed ~exec ~chaos ~cost ~eps ~delta q db with
  | Error e -> Alcotest.failf "relaxed run failed: %s" (Error.message e)
  | Ok g ->
      Alcotest.(check bool) "relaxed eps reported" true
        (g.Planner.eps_used > eps);
      Alcotest.(check bool) "guarantee intact at relaxed eps" true
        g.Planner.guarantee;
      Alcotest.(check bool) "marked degraded" true g.Planner.degraded

(* ---------- costed rung choice ---------- *)

let test_always_empty_ranks_exact_first () =
  let db = reorder_db () in
  let q = Ecq.parse "ans(x) :- E(x, y), !E(x, y)" in
  let cost = analyze_with db q in
  Alcotest.(check bool) "always-empty flagged" true cost.Cost.always_empty;
  Alcotest.(check string) "exact wins outright" "exact"
    (Cost.rung_name (Cost.chosen cost));
  Alcotest.(check bool) "bound is zero" true
    (cost.Cost.query_bound.Cost.log2 = Float.neg_infinity)

let test_empty_relation_bound_zero () =
  let s = Structure.create ~universe_size:4 in
  Structure.declare s "E" ~arity:2;
  let q = Ecq.parse "ans(x) :- E(x, y)" in
  let cost = analyze_with s q in
  Alcotest.(check bool) "empty relation: provably empty" true
    (cost.Cost.query_bound.Cost.log2 = Float.neg_infinity)

(* ---------- cardinality stats ---------- *)

let test_distinct_counts () =
  let s = Structure.create ~universe_size:10 in
  Structure.declare s "E" ~arity:2;
  Structure.add_fact s "E" [| 0; 1 |];
  Structure.add_fact s "E" [| 0; 2 |];
  Structure.add_fact s "E" [| 1; 2 |];
  Structure.add_fact s "E" [| 0; 1 |] |> ignore;
  let check_stats label db =
    let stats = Cardinality.of_structure db in
    Alcotest.(check bool) (label ^ ": measured") false stats.Cardinality.nominal;
    match Cardinality.find stats "E" with
    | None -> Alcotest.fail (label ^ ": E missing")
    | Some e ->
        Alcotest.(check int) (label ^ ": cardinality") 3 e.Cardinality.cardinality;
        Alcotest.(check (array int)) (label ^ ": distinct per column")
          [| 2; 2 |] e.Cardinality.distinct;
        Alcotest.(check int) (label ^ ": active domain") 3
          e.Cardinality.active_domain
  in
  (* builder phase scans; sealed phase reads the column dictionaries —
     both must agree *)
  check_stats "builder" s;
  check_stats "sealed" (Structure.seal s)

let test_nominal_stats () =
  let stats = Cardinality.nominal [ ("E", 2); ("P", 1) ] in
  Alcotest.(check bool) "flagged nominal" true stats.Cardinality.nominal;
  match Cardinality.find stats "P" with
  | None -> Alcotest.fail "P missing from nominal stats"
  | Some p ->
      Alcotest.(check int) "nominal cardinality" Cardinality.nominal_cardinality
        p.Cardinality.cardinality;
      Alcotest.(check int) "distinct length = arity" 1
        (Array.length p.Cardinality.distinct)

(* The report carries the cost exactly when a database was given — what
   the plan cache's fingerprint-keyed entries rely on. *)
let test_report_carries_cost () =
  let db = reorder_db () in
  let q = Ecq.parse "ans(x) :- E(x, y)" in
  Alcotest.(check bool) "with db: cost present" true
    ((Report.analyze ~db q).Report.cost <> None);
  Alcotest.(check bool) "without db: no cost" true
    ((Report.analyze q).Report.cost = None)

let tests =
  [
    Alcotest.test_case "rat: overflow is typed" `Quick test_rat_overflow;
    Alcotest.test_case "repetition formulas pinned" `Quick
      test_repetition_formulas;
    QCheck_alcotest.to_alcotest prop_bound_sound;
    QCheck_alcotest.to_alcotest prop_component_bounds_sound;
    Alcotest.test_case "reordering is estimate-preserving" `Quick
      test_estimate_preserving_reorder;
    Alcotest.test_case "ladder: shape and relaxed completion" `Quick
      test_ladder_shape;
    Alcotest.test_case "always-empty ranks exact first" `Quick
      test_always_empty_ranks_exact_first;
    Alcotest.test_case "empty relation: bound zero" `Quick
      test_empty_relation_bound_zero;
    Alcotest.test_case "cardinality: distinct counts" `Quick
      test_distinct_counts;
    Alcotest.test_case "cardinality: nominal stats" `Quick test_nominal_stats;
    Alcotest.test_case "report carries cost iff db" `Quick
      test_report_carries_cost;
  ]
