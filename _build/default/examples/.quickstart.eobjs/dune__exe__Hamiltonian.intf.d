examples/hamiltonian.mli:
