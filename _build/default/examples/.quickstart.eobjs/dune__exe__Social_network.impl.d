examples/social_network.ml: Ac_query Ac_relational Ac_workload Approxcount Format Printf Random Unix
