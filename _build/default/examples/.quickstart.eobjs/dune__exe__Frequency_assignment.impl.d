examples/frequency_assignment.ml: Ac_query Ac_workload Approxcount Format List Printf Random
