examples/planner_tour.ml: Ac_query Ac_relational Approxcount Format List Random
