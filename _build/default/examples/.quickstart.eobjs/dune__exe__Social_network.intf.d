examples/social_network.mli:
