examples/quickstart.mli:
