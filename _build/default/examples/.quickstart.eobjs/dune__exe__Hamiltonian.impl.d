examples/hamiltonian.ml: Ac_hypergraph Ac_query Ac_workload Approxcount Format List Random
