examples/planner_tour.mli:
