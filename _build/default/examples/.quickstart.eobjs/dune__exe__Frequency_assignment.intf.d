examples/frequency_assignment.mli:
