examples/quickstart.ml: Ac_query Ac_relational Approxcount Array Format List Random String
