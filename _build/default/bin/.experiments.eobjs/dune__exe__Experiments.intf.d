bin/experiments.mli:
