bin/experiments.ml: Ac_experiments Arg Cmd Cmdliner Format List Printf Term
