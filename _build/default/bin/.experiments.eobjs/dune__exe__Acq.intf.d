bin/acq.mli:
