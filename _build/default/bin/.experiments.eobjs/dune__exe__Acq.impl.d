bin/acq.ml: Ac_automata Ac_hypergraph Ac_query Ac_relational Ac_workload Approxcount Arg Array Cmd Cmdliner Printf Random String Term
