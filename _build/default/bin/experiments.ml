(* Experiment driver: regenerates every table of EXPERIMENTS.md.

     dune exec bin/experiments.exe            # all experiments
     dune exec bin/experiments.exe -- e4 e6   # a subset
     dune exec bin/experiments.exe -- --list  # the registry *)

open Cmdliner

let run_ids list_only ids =
  let fmt = Format.std_formatter in
  if list_only then begin
    List.iter
      (fun e -> Format.fprintf fmt "%-4s %s@." e.Ac_experiments.Common.id e.claim)
      Ac_experiments.Registry.all;
    `Ok ()
  end
  else begin
    let selected =
      match ids with
      | [] -> Ok Ac_experiments.Registry.all
      | ids ->
          let rec resolve acc = function
            | [] -> Ok (List.rev acc)
            | id :: rest -> (
                match Ac_experiments.Registry.find id with
                | Some e -> resolve (e :: acc) rest
                | None -> Error id)
          in
          resolve [] ids
    in
    match selected with
    | Error id -> `Error (false, Printf.sprintf "unknown experiment %S" id)
    | Ok experiments ->
        List.iter
          (fun e ->
            Format.fprintf fmt "@.### %s — %s@." e.Ac_experiments.Common.id e.claim;
            e.run fmt)
          experiments;
        Format.pp_print_flush fmt ();
        `Ok ()
  end

let ids =
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (e1..e8).")

let list_flag =
  Arg.(value & flag & info [ "list" ] ~doc:"List the experiment registry and exit.")

let cmd =
  let doc = "Regenerate the paper-claim experiments (DESIGN.md §4)" in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(ret (const run_ids $ list_flag $ ids))

let () = exit (Cmd.eval cmd)
