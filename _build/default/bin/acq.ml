(* acq — approximate conjunctive-query counting from the command line.

     acq count  --db facts.txt --query "ans(x) :- F(x,y), F(x,z), y != z"
     acq count  --db facts.txt --query "..." --method fpras
     acq sample --db facts.txt --query "..." --draws 5
     acq widths --query "..."
     acq generate --kind friends --size 100 --out facts.txt

   Databases use the plain-text format of Ac_relational.Structure_io. *)

open Cmdliner

module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Structure_io = Ac_relational.Structure_io

let query_term =
  let doc = "The query, e.g. \"ans(x) :- E(x, y), !R(y, y), x != y\"." in
  Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY" ~doc)

let db_term =
  let doc = "Database file (see Structure_io format)." in
  Arg.(required & opt (some file) None & info [ "db" ] ~docv:"FILE" ~doc)

let epsilon_term =
  Arg.(value & opt float 0.25 & info [ "epsilon" ] ~docv:"EPS" ~doc:"Accuracy target.")

let delta_term =
  Arg.(value & opt float 0.1 & info [ "delta" ] ~docv:"DELTA" ~doc:"Failure probability.")

let seed_term =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let engine_term =
  (* note: must not be named [conv] — Arg.( ) would shadow it *)
  let engine_conv =
    Arg.enum
      [
        ("tree-dp", Approxcount.Colour_oracle.Tree_dp);
        ("generic", Approxcount.Colour_oracle.Generic);
        ("direct", Approxcount.Colour_oracle.Direct);
      ]
  in
  Arg.(
    value
    & opt engine_conv Approxcount.Colour_oracle.Tree_dp
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Hom engine for the FPTRAS: tree-dp (Theorem 5), generic (Theorem 13) or direct (ablation).")

let method_term =
  Arg.(
    value
    & opt
        (enum
           [ ("auto", `Auto); ("exact", `Exact); ("fptras", `Fptras);
             ("fpras", `Fpras); ("brute", `Brute) ])
        `Auto
    & info [ "m"; "method" ] ~docv:"METHOD"
        ~doc:"auto (planner), exact (join+project), fptras (Theorems 5/13), fpras (Theorem 16, CQs only), brute.")

let with_input query_text db_path f =
  match Ecq.parse query_text with
  | exception Failure msg -> `Error (false, msg)
  | query -> (
      match Structure_io.load db_path with
      | exception Failure msg -> `Error (false, "database: " ^ msg)
      | db ->
          if not (Ecq.compatible_with query db) then
            `Error (false, "query signature is not contained in the database's")
          else f query db)

let count_cmd =
  let run query_text db_path method_ engine epsilon delta seed =
    with_input query_text db_path (fun query db ->
        let rng = Random.State.make [| seed |] in
        (match method_ with
        | `Auto ->
            let v, d =
              Approxcount.Planner.count ~rng ~epsilon ~delta query db
            in
            Printf.printf "%.1f\n" v;
            Printf.eprintf "plan: %s\n" d.Approxcount.Planner.reason
        | `Exact ->
            Printf.printf "%d\n" (Approxcount.Exact.by_join_projection query db)
        | `Brute -> Printf.printf "%d\n" (Approxcount.Exact.brute_force query db)
        | `Fptras ->
            let r =
              Approxcount.Fptras.approx_count ~rng ~engine ~epsilon ~delta query db
            in
            Printf.printf "%.1f%s\n" r.Approxcount.Fptras.estimate
              (if r.exact then " (exact)" else "")
        | `Fpras ->
            if not (Ecq.is_cq query) then
              failwith "the FPRAS requires a CQ (no disequalities or negations)"
            else
              let config =
                { (Ac_automata.Acjr.default_config ~seed ()) with
                  Ac_automata.Acjr.sketch_size = 48 }
              in
              Printf.printf "%.1f\n"
                (Approxcount.Fpras.approx_count ~config query db));
        `Ok ())
  in
  let doc = "Count the answers of a query in a database." in
  Cmd.v (Cmd.info "count" ~doc)
    Term.(
      ret
        (const run $ query_term $ db_term $ method_term $ engine_term
       $ epsilon_term $ delta_term $ seed_term))

let sample_cmd =
  let draws_term =
    Arg.(value & opt int 1 & info [ "draws" ] ~docv:"N" ~doc:"Number of samples.")
  in
  let run query_text db_path engine epsilon delta seed draws =
    with_input query_text db_path (fun query db ->
        let rng = Random.State.make [| seed |] in
        let sampler =
          Approxcount.Sampling.make_sampler ~rng ~engine ~epsilon ~delta query db
        in
        for _ = 1 to draws do
          match sampler () with
          | None -> print_endline "(no sample)"
          | Some tau ->
              print_endline
                (String.concat " " (Array.to_list (Array.map string_of_int tau)))
        done;
        `Ok ())
  in
  let doc = "Draw approximately-uniform answers (§6 JVV sampling)." in
  Cmd.v (Cmd.info "sample" ~doc)
    Term.(
      ret
        (const run $ query_term $ db_term $ engine_term $ epsilon_term
       $ delta_term $ seed_term $ draws_term))

let widths_cmd =
  let run query_text =
    match Ecq.parse query_text with
    | exception Failure msg -> `Error (false, msg)
    | query ->
        let h = Ecq.hypergraph query in
        let small = Ac_hypergraph.Hypergraph.num_vertices h <= 14 in
        let tw =
          if small then fst (Ac_hypergraph.Tree_decomposition.treewidth_exact h)
          else
            Ac_hypergraph.Tree_decomposition.width
              (Ac_hypergraph.Tree_decomposition.decompose h)
        in
        let fhw =
          if small then fst (Ac_hypergraph.Widths.fhw_exact h)
          else Ac_hypergraph.Widths.fhw_upper h
        in
        Printf.printf "variables:            %d (%d free)\n" (Ecq.num_vars query)
          (Ecq.num_free query);
        Printf.printf "size ‖φ‖:             %d\n" (Ecq.size query);
        Printf.printf "class:                %s\n"
          (if Ecq.is_cq query then "CQ"
           else if Ecq.is_dcq query then "DCQ"
           else "ECQ");
        Printf.printf "treewidth:            %d%s\n" tw (if small then "" else " (upper bound)");
        Printf.printf "fractional htw:       %.2f%s\n" fhw
          (if small then "" else " (upper bound)");
        Printf.printf "guarantee:            %s\n"
          (if Ecq.is_cq query then "FPRAS (Theorem 16, bounded fhw)"
           else if Ecq.is_dcq query then
             "FPTRAS (Theorem 13, bounded adaptive width); no FPRAS (Obs. 10)"
           else "FPTRAS (Theorem 5, bounded tw & arity); no FPRAS (Obs. 10)");
        `Ok ()
  in
  let doc = "Width measures and the paper's guarantee for a query." in
  Cmd.v (Cmd.info "widths" ~doc) Term.(ret (const run $ query_term))

let generate_cmd =
  let kind_term =
    Arg.(
      value
      & opt (enum [ ("friends", `Friends); ("graph", `Graph); ("relation", `Relation) ]) `Friends
      & info [ "kind" ] ~docv:"KIND" ~doc:"friends | graph | relation.")
  in
  let size_term =
    Arg.(value & opt int 50 & info [ "size" ] ~docv:"N" ~doc:"Universe size.")
  in
  let out_term =
    Arg.(required & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let run kind size out seed =
    let rng = Random.State.make [| seed |] in
    let db =
      match kind with
      | `Friends -> Ac_workload.Dbgen.friends_database ~rng ~n:size ~avg_degree:6.0
      | `Graph ->
          Ac_workload.Graph.to_structure
            (Ac_workload.Graph.random_gnp ~rng size 0.3)
      | `Relation ->
          Ac_workload.Dbgen.random_structure ~rng ~universe_size:size
            [ ("R", 2, 4 * size) ]
    in
    Structure_io.save out db;
    Printf.printf "wrote %s (universe %d, ‖D‖ = %d)\n" out
      (Structure.universe_size db) (Structure.size db);
    `Ok ()
  in
  let doc = "Generate a random database file." in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(ret (const run $ kind_term $ size_term $ out_term $ seed_term))

let () =
  let doc = "approximately counting answers to conjunctive queries" in
  let info = Cmd.info "acq" ~doc in
  exit (Cmd.eval (Cmd.group info [ count_cmd; sample_cmd; widths_cmd; generate_cmd ]))
