open Ac_hypergraph

let gen_hypergraph =
  QCheck2.Gen.(
    int_range 2 7 >>= fun n ->
    list_size (int_range 1 8) (list_size (int_range 1 3) (int_range 0 (n - 1)))
    >>= fun edges ->
    let edges = if edges = [] then [ [ 0 ] ] else edges in
    let covered = Array.make n false in
    List.iter (List.iter (fun v -> covered.(v) <- true)) edges;
    let singles =
      List.init n Fun.id
      |> List.filter_map (fun v -> if covered.(v) then None else Some [ v ])
    in
    return (Hypergraph.create ~num_vertices:n (edges @ singles)))

let test_single_edge () =
  (* one big hyperedge: the one-bag decomposition has width 1 and
     trivially satisfies the special condition *)
  let h = Hypergraph.create ~num_vertices:4 [ [ 0; 1; 2; 3 ] ] in
  let d = Hypertree.of_hypergraph h in
  Alcotest.(check bool) "generalized" true (Hypertree.is_generalized h d);
  Alcotest.(check int) "width 1" 1 (Hypertree.width d)

let test_triangle_guards () =
  let h = Hypergraph.cycle 3 in
  let d = Hypertree.of_hypergraph h in
  Alcotest.(check bool) "generalized" true (Hypertree.is_generalized h d);
  (* integral cover of any 3-vertex bag of the triangle needs 2 edges *)
  Alcotest.(check int) "width 2" 2 (Hypertree.width d)

let test_path_width_one () =
  let h = Hypergraph.path 6 in
  let d = Hypertree.of_hypergraph h in
  Alcotest.(check bool) "generalized" true (Hypertree.is_generalized h d);
  Alcotest.(check int) "width 1" 1 (Hypertree.width d)

let test_invalid_guard_detected () =
  let h = Hypergraph.path 3 in
  let td = Ac_hypergraph.Tree_decomposition.decompose h in
  let d = Hypertree.of_tree_decomposition h td in
  (* corrupt: drop all guards of node 0 *)
  let bad = { d with Hypertree.guards = Array.map (fun _ -> []) d.Hypertree.guards } in
  Alcotest.(check bool) "empty guards rejected" false (Hypertree.is_generalized h bad)

let test_special_condition_violation () =
  (* hand-built: root bag {1} guarded by the edge {0,1}, child bag {0,1}
     below it — the root guard contains vertex 0, which occurs below but
     not in the root bag: condition (iv) fails *)
  let h = Hypergraph.create ~num_vertices:2 [ [ 0; 1 ]; [ 0 ]; [ 1 ] ] in
  let e01 = Ac_hypergraph.Bitset.of_list ~capacity:2 [ 0; 1 ] in
  let b1 = Ac_hypergraph.Bitset.of_list ~capacity:2 [ 1 ] in
  let d =
    {
      Hypertree.bags = [| b1; e01 |];
      parent = [| -1; 0 |];
      guards = [| [ e01 ]; [ e01 ] |];
    }
  in
  Alcotest.(check bool) "generalized holds" true (Hypertree.is_generalized h d);
  Alcotest.(check bool) "special condition violated" false
    (Hypertree.satisfies_special_condition d);
  (* guarding the root with the singleton edge {1} instead repairs it *)
  let good = { d with Hypertree.guards = [| [ b1 ]; [ e01 ] |] } in
  Alcotest.(check bool) "repaired" true (Hypertree.is_valid h good)

let prop_generalized_on_random =
  QCheck2.Test.make ~count:100 ~name:"guarded decompositions are generalized HDs"
    gen_hypergraph
    (fun h ->
      let d = Hypertree.of_hypergraph h in
      Hypertree.is_generalized h d)

let prop_width_matches_integral_cover =
  QCheck2.Test.make ~count:60 ~name:"guard width = max bag integral cover"
    gen_hypergraph
    (fun h ->
      let td = Ac_hypergraph.Tree_decomposition.decompose h in
      let d = Hypertree.of_tree_decomposition h td in
      Hypertree.width d = Widths.hw_of_decomposition h td)

let tests =
  [
    Alcotest.test_case "single edge" `Quick test_single_edge;
    Alcotest.test_case "triangle guards" `Quick test_triangle_guards;
    Alcotest.test_case "path width one" `Quick test_path_width_one;
    Alcotest.test_case "invalid guard detected" `Quick test_invalid_guard_detected;
    Alcotest.test_case "special condition" `Quick test_special_condition_violation;
    QCheck_alcotest.to_alcotest prop_generalized_on_random;
    QCheck_alcotest.to_alcotest prop_width_matches_integral_cover;
  ]
