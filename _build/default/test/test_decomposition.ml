open Ac_hypergraph

(* Random hypergraph generator shared by decomposition properties. *)
let gen_hypergraph =
  QCheck2.Gen.(
    int_range 2 8 >>= fun n ->
    list_size (int_range 1 10) (list_size (int_range 1 3) (int_range 0 (n - 1)))
    >>= fun edges ->
    let edges = List.filter (( <> ) []) edges in
    let edges = if edges = [] then [ [ 0 ] ] else edges in
    return (Hypergraph.create ~num_vertices:n edges))

let test_treewidth_values () =
  let tw h = fst (Tree_decomposition.treewidth_exact h) in
  Alcotest.(check int) "path" 1 (tw (Hypergraph.path 6));
  Alcotest.(check int) "cycle" 2 (tw (Hypergraph.cycle 6));
  Alcotest.(check int) "clique 5" 4 (tw (Hypergraph.clique 5));
  Alcotest.(check int) "star" 1 (tw (Hypergraph.star 5));
  Alcotest.(check int) "grid 2x3" 2 (tw (Hypergraph.grid 2 3));
  Alcotest.(check int) "grid 3x3" 3 (tw (Hypergraph.grid 3 3));
  Alcotest.(check int) "single vertex" 0 (tw (Hypergraph.path 1))

let test_exact_is_valid () =
  List.iter
    (fun h ->
      let w, d = Tree_decomposition.treewidth_exact h in
      Alcotest.(check bool) "valid" true (Tree_decomposition.is_valid h d);
      Alcotest.(check int) "width matches" w (Tree_decomposition.width d))
    [
      Hypergraph.path 7;
      Hypergraph.cycle 5;
      Hypergraph.clique 4;
      Hypergraph.grid 3 3;
      Hypergraph.hypercycle 3;
    ]

let test_min_fill_valid () =
  List.iter
    (fun h ->
      let d = Tree_decomposition.of_elimination_order h (Tree_decomposition.min_fill_order h) in
      Alcotest.(check bool) "valid" true (Tree_decomposition.is_valid h d))
    [ Hypergraph.path 10; Hypergraph.grid 4 4; Hypergraph.clique 6 ]

let test_min_fill_path_optimal () =
  let h = Hypergraph.path 10 in
  let d = Tree_decomposition.of_elimination_order h (Tree_decomposition.min_fill_order h) in
  Alcotest.(check int) "min-fill path width" 1 (Tree_decomposition.width d)

let prop_random_valid =
  QCheck2.Test.make ~count:100 ~name:"exact decomposition valid on random hypergraphs"
    gen_hypergraph
    (fun h ->
      let _, d = Tree_decomposition.treewidth_exact h in
      Tree_decomposition.is_valid h d)

let prop_min_fill_upper_bound =
  QCheck2.Test.make ~count:100 ~name:"min-fill width >= exact width" gen_hypergraph
    (fun h ->
      let exact, _ = Tree_decomposition.treewidth_exact h in
      let d =
        Tree_decomposition.of_elimination_order h (Tree_decomposition.min_fill_order h)
      in
      Tree_decomposition.is_valid h d && Tree_decomposition.width d >= exact)

let prop_min_degree_valid =
  QCheck2.Test.make ~count:100 ~name:"min-degree decomposition valid" gen_hypergraph
    (fun h ->
      let exact, _ = Tree_decomposition.treewidth_exact h in
      let d =
        Tree_decomposition.of_elimination_order h
          (Tree_decomposition.min_degree_order h)
      in
      Tree_decomposition.is_valid h d && Tree_decomposition.width d >= exact)

let test_heuristic_decompose_large () =
  (* above the exact limit: best-of heuristics, still valid *)
  let h = Hypergraph.grid 5 5 in
  let d = Tree_decomposition.decompose h in
  Alcotest.(check bool) "valid" true (Tree_decomposition.is_valid h d);
  Alcotest.(check bool) "width >= 5 (tw of 5x5 grid)" true
    (Tree_decomposition.width d >= 5)

let test_nice_structure () =
  List.iter
    (fun h ->
      let nice = Nice_decomposition.of_hypergraph h in
      Alcotest.(check bool) "is nice" true (Nice_decomposition.is_nice nice);
      Alcotest.(check bool) "is valid" true (Nice_decomposition.is_valid h nice))
    [
      Hypergraph.path 6;
      Hypergraph.cycle 5;
      Hypergraph.grid 3 3;
      Hypergraph.star 4;
      Hypergraph.hypercycle 3;
    ]

let prop_nice_random =
  QCheck2.Test.make ~count:100 ~name:"nice decomposition valid+nice on random"
    gen_hypergraph
    (fun h ->
      let nice = Nice_decomposition.of_hypergraph h in
      Nice_decomposition.is_nice nice && Nice_decomposition.is_valid h nice)

let prop_nice_width_preserved =
  QCheck2.Test.make ~count:100 ~name:"nice decomposition width does not grow"
    gen_hypergraph
    (fun h ->
      let w, d = Tree_decomposition.treewidth_exact h in
      let nice = Nice_decomposition.of_decomposition h d in
      ignore w;
      Nice_decomposition.width nice <= Tree_decomposition.width d)

let test_postorder () =
  let h = Hypergraph.grid 2 3 in
  let nice = Nice_decomposition.of_hypergraph h in
  let order = Nice_decomposition.postorder nice in
  Alcotest.(check int) "covers all nodes"
    (Nice_decomposition.num_nodes nice)
    (Array.length order);
  (* children appear before parents *)
  let seen = Array.make (Nice_decomposition.num_nodes nice) false in
  Array.iter
    (fun node ->
      List.iter
        (fun c -> Alcotest.(check bool) "child first" true seen.(c))
        (Nice_decomposition.children nice).(node);
      seen.(node) <- true)
    order

let tests =
  [
    Alcotest.test_case "treewidth values" `Quick test_treewidth_values;
    Alcotest.test_case "exact decomposition validity" `Quick test_exact_is_valid;
    Alcotest.test_case "min-fill validity" `Quick test_min_fill_valid;
    Alcotest.test_case "min-fill path optimal" `Quick test_min_fill_path_optimal;
    Alcotest.test_case "nice structure" `Quick test_nice_structure;
    Alcotest.test_case "postorder" `Quick test_postorder;
    Alcotest.test_case "heuristic decompose large" `Quick test_heuristic_decompose_large;
    QCheck_alcotest.to_alcotest prop_random_valid;
    QCheck_alcotest.to_alcotest prop_min_fill_upper_bound;
    QCheck_alcotest.to_alcotest prop_min_degree_valid;
    QCheck_alcotest.to_alcotest prop_nice_random;
    QCheck_alcotest.to_alcotest prop_nice_width_preserved;
  ]
