module G = Ac_workload.Graph
module Dbgen = Ac_workload.Dbgen
module QF = Ac_workload.Query_families
module Structure = Ac_relational.Structure
module Ecq = Ac_query.Ecq

let test_graph_basics () =
  let g = G.create ~num_vertices:4 [ (0, 1); (1, 0); (1, 2); (2, 2) ] in
  Alcotest.(check int) "dedup + drop loops" 2 (G.num_edges g);
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (1, 2) ] (G.edges g);
  Alcotest.(check bool) "has edge" true (G.has_edge g 1 0);
  Alcotest.(check bool) "no edge" false (G.has_edge g 0 2);
  Alcotest.(check int) "degree" 2 (G.degree g 1)

let test_families () =
  Alcotest.(check int) "path edges" 4 (G.num_edges (G.path 5));
  Alcotest.(check int) "cycle edges" 5 (G.num_edges (G.cycle 5));
  Alcotest.(check int) "clique edges" 10 (G.num_edges (G.clique 5));
  Alcotest.(check int) "grid edges" 7 (G.num_edges (G.grid 2 3));
  Alcotest.(check int) "binary tree vertices" 7 (G.num_vertices (G.binary_tree ~depth:2));
  Alcotest.(check int) "binary tree edges" 6 (G.num_edges (G.binary_tree ~depth:2))

let test_common_neighbours () =
  (* star: all leaf pairs share the centre *)
  let g = G.star 3 in
  Alcotest.(check (list (pair int int))) "star pairs"
    [ (1, 2); (1, 3); (2, 3) ]
    (G.common_neighbour_pairs g);
  (* path 0-1-2: only (0,2) *)
  Alcotest.(check (list (pair int int))) "path pairs" [ (0, 2) ]
    (G.common_neighbour_pairs (G.path 3))

let test_to_structure () =
  let g = G.path 3 in
  let s = G.to_structure g in
  Alcotest.(check bool) "forward" true (Structure.holds s "E" [| 0; 1 |]);
  Alcotest.(check bool) "backward" true (Structure.holds s "E" [| 1; 0 |]);
  Alcotest.(check int) "4 facts" 4
    (Ac_relational.Relation.cardinality (Structure.relation s "E"))

let test_random_gnm () =
  let rng = Random.State.make [| 1 |] in
  let g = G.random_gnm ~rng 8 10 in
  Alcotest.(check int) "exactly m edges" 10 (G.num_edges g);
  match G.random_gnm ~rng 3 5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "too many edges should raise"

let prop_gnp_bounds =
  QCheck2.Test.make ~count:50 ~name:"G(n,p) edges within range"
    QCheck2.Gen.(pair (int_range 1 10) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = G.random_gnp ~rng n 0.5 in
      G.num_edges g <= n * (n - 1) / 2
      && List.for_all (fun (u, v) -> u < v && v < n) (G.edges g))

let test_dbgen_counts () =
  let rng = Random.State.make [| 2 |] in
  let s = Dbgen.random_structure ~rng ~universe_size:10 [ ("E", 2, 30); ("P", 1, 5) ] in
  Alcotest.(check int) "E count" 30
    (Ac_relational.Relation.cardinality (Structure.relation s "E"));
  Alcotest.(check int) "P count" 5
    (Ac_relational.Relation.cardinality (Structure.relation s "P"));
  (* requesting more tuples than the space holds saturates *)
  let s2 = Dbgen.random_structure ~rng ~universe_size:2 [ ("E", 2, 100) ] in
  Alcotest.(check int) "saturated" 4
    (Ac_relational.Relation.cardinality (Structure.relation s2 "E"))

let test_query_families_structure () =
  let q = QF.friends () in
  Alcotest.(check int) "friends vars" 3 (Ecq.num_vars q);
  let q2 = QF.star_distinct 3 in
  Alcotest.(check int) "star free" 3 (Ecq.num_free q2);
  Alcotest.(check int) "star diseqs" 3 (List.length (Ecq.delta q2));
  let q3 = QF.path_endpoints 4 in
  Alcotest.(check int) "path vars" 5 (Ecq.num_vars q3);
  Alcotest.(check bool) "path is cq" true (Ecq.is_cq q3);
  let q4 = QF.wide_path ~k:3 ~arity:4 () in
  Alcotest.(check int) "wide path vars" 10 (Ecq.num_vars q4);
  Alcotest.(check bool) "wide path is dcq" true (Ecq.is_dcq q4);
  let q5 = QF.hamiltonian 4 in
  Alcotest.(check int) "hamiltonian diseqs" 6 (List.length (Ecq.delta q5));
  let q6 = QF.grid_query 3 3 in
  Alcotest.(check int) "grid vars" 9 (Ecq.num_vars q6)

let test_grid_query_treewidth () =
  let tw q =
    fst (Ac_hypergraph.Tree_decomposition.treewidth_exact (Ecq.hypergraph q))
  in
  Alcotest.(check int) "grid 2xk tw" 2 (tw (QF.grid_query 2 4));
  Alcotest.(check int) "grid 3x3 tw" 3 (tw (QF.grid_query 3 3));
  Alcotest.(check int) "path tw" 1 (tw (QF.path_endpoints 5))

let test_wide_path_fhw () =
  (* every bag covered by one atom: fhw = 1 despite arity 4 *)
  let q = QF.wide_path ~k:3 ~arity:4 () in
  let h = Ecq.hypergraph q in
  let fhw, _ = Ac_hypergraph.Widths.fhw_exact h in
  Alcotest.(check (float 1e-6)) "fhw 1" 1.0 fhw;
  Alcotest.(check int) "arity 4" 4 (Ac_hypergraph.Hypergraph.arity h)

let test_landscape_nonempty () =
  let families = QF.landscape () in
  Alcotest.(check bool) "at least 8 families" true (List.length families >= 8);
  List.iter (fun (name, q) -> if Ecq.num_vars q < 1 then Alcotest.fail name) families

let test_path_endpoints_semantics () =
  (* path of length 2 in a concrete graph *)
  let q = QF.path_endpoints 2 in
  let g = G.path 3 in
  let db = G.to_structure g in
  (* walks of length exactly 2 in the path 0-1-2: 0-1-0, 0-1-2, 1-0-1,
     1-2-1, 2-1-0, 2-1-2; distinct endpoint pairs: (0,0), (0,2), (1,1),
     (2,0), (2,2) = 5 *)
  Alcotest.(check int) "length-2 walks" 5 (Approxcount.Exact.by_join_projection q db)

let tests =
  [
    Alcotest.test_case "graph basics" `Quick test_graph_basics;
    Alcotest.test_case "graph families" `Quick test_families;
    Alcotest.test_case "common neighbours" `Quick test_common_neighbours;
    Alcotest.test_case "to structure" `Quick test_to_structure;
    Alcotest.test_case "random gnm" `Quick test_random_gnm;
    Alcotest.test_case "dbgen counts" `Quick test_dbgen_counts;
    Alcotest.test_case "query family structure" `Quick test_query_families_structure;
    Alcotest.test_case "grid query treewidth" `Quick test_grid_query_treewidth;
    Alcotest.test_case "wide path fhw" `Quick test_wide_path_fhw;
    Alcotest.test_case "landscape nonempty" `Quick test_landscape_nonempty;
    Alcotest.test_case "path endpoints semantics" `Quick test_path_endpoints_semantics;
    QCheck_alcotest.to_alcotest prop_gnp_bounds;
  ]
