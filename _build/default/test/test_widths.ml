open Ac_hypergraph

let bs capacity l = Bitset.of_list ~capacity l

let gen_hypergraph =
  QCheck2.Gen.(
    int_range 2 7 >>= fun n ->
    list_size (int_range 1 8) (list_size (int_range 1 3) (int_range 0 (n - 1)))
    >>= fun edges ->
    let edges = if edges = [] then [ [ 0 ] ] else edges in
    (* cover every vertex (as query hypergraphs always do) so that fcn
       stays finite *)
    let covered = Array.make n false in
    List.iter (List.iter (fun v -> covered.(v) <- true)) edges;
    let singles =
      List.init n Fun.id
      |> List.filter_map (fun v -> if covered.(v) then None else Some [ v ])
    in
    return (Hypergraph.create ~num_vertices:n (edges @ singles)))

let test_fcn_triangle () =
  let h = Hypergraph.cycle 3 in
  let v, weights = Widths.fcn h (Bitset.full ~capacity:3) in
  Alcotest.(check (float 1e-6)) "triangle fcn" 1.5 v;
  Alcotest.(check int) "three weights" 3 (Array.length weights)

let test_fcn_single_edge () =
  let h = Hypergraph.create ~num_vertices:4 [ [ 0; 1; 2; 3 ] ] in
  let v, _ = Widths.fcn h (Bitset.full ~capacity:4) in
  Alcotest.(check (float 1e-6)) "one big edge" 1.0 v

let test_fcn_isolated () =
  let h = Hypergraph.create ~num_vertices:3 [ [ 0; 1 ] ] in
  (* vertex 2 lies in no edge: induced on {1, 2} has no edge covering 2 *)
  let v, _ = Widths.fcn h (bs 3 [ 1; 2 ]) in
  Alcotest.(check bool) "infinite" true (v = infinity)

let test_integral_cover () =
  let h = Hypergraph.cycle 3 in
  Alcotest.(check int) "triangle integral" 2
    (Widths.integral_cover_number h (Bitset.full ~capacity:3));
  let h2 = Hypergraph.create ~num_vertices:4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  Alcotest.(check int) "two disjoint edges" 2
    (Widths.integral_cover_number h2 (Bitset.full ~capacity:4));
  Alcotest.(check int) "empty set" 0
    (Widths.integral_cover_number h2 (Bitset.create ~capacity:4))

let test_fhw_values () =
  (* triangle as three binary edges: single-bag decomposition, fhw 1.5 *)
  let triangle = Hypergraph.cycle 3 in
  let v, d = Widths.fhw_exact triangle in
  Alcotest.(check (float 1e-6)) "triangle fhw" 1.5 v;
  Alcotest.(check bool) "witness valid" true (Tree_decomposition.is_valid triangle d);
  (* a path has fhw 1 *)
  let path = Hypergraph.path 6 in
  Alcotest.(check (float 1e-6)) "path fhw" 1.0 (fst (Widths.fhw_exact path));
  (* one big hyperedge: fhw 1 *)
  let big = Hypergraph.create ~num_vertices:5 [ [ 0; 1; 2; 3; 4 ] ] in
  Alcotest.(check (float 1e-6)) "big edge fhw" 1.0 (fst (Widths.fhw_exact big))

let test_ghw_values () =
  Alcotest.(check (float 1e-6)) "triangle ghw" 2.0 (Widths.ghw_exact (Hypergraph.cycle 3));
  Alcotest.(check (float 1e-6)) "path ghw" 1.0 (Widths.ghw_exact (Hypergraph.path 5))

let test_fis () =
  let h = Hypergraph.cycle 5 in
  let v, mu = Widths.max_fractional_independent_set h in
  Alcotest.(check bool) "is fis" true (Widths.is_fractional_independent_set h mu);
  (* C5 fractional independence number is 5/2 *)
  Alcotest.(check (float 1e-4)) "C5 value" 2.5 v

let test_adaptive_bounds () =
  let check_bounds h =
    let lo, hi = Widths.adaptive_width_bounds h in
    Alcotest.(check bool) "lo <= hi" true (lo <= hi +. 1e-9)
  in
  List.iter check_bounds
    [ Hypergraph.path 5; Hypergraph.cycle 4; Hypergraph.clique 4; Hypergraph.hypercycle 3 ];
  (* one big hyperedge: aw = 1 exactly *)
  let big = Hypergraph.create ~num_vertices:5 [ [ 0; 1; 2; 3; 4 ] ] in
  let lo, hi = Widths.adaptive_width_bounds big in
  Alcotest.(check (float 1e-6)) "big edge aw hi" 1.0 hi;
  Alcotest.(check bool) "big edge aw lo" true (lo <= 1.0 +. 1e-9)

(* Observation 40: fcn is monotone under subsets. *)
let prop_fcn_monotone =
  QCheck2.Test.make ~count:80 ~name:"Observation 40: fcn monotone"
    QCheck2.Gen.(
      gen_hypergraph >>= fun h ->
      let n = Hypergraph.num_vertices h in
      pair (return h) (pair (list_size (int_range 0 n) (int_range 0 (n - 1)))
        (list_size (int_range 0 n) (int_range 0 (n - 1)))))
    (fun (h, (a, b)) ->
      let n = Hypergraph.num_vertices h in
      let sa = bs n a in
      let sb = Bitset.union sa (bs n b) in
      let fa = fst (Widths.fcn h sa) and fb = fst (Widths.fcn h sb) in
      fa <= fb +. 1e-6)

(* Observation 34: tw(H) <= arity · aw(H) - 1 — checked against the upper
   bound since aw >= the lower bound we can certify. *)
let prop_obs34_with_fhw =
  QCheck2.Test.make ~count:60 ~name:"tw <= arity*fhw - 1 (Observation 34 via aw<=fhw)"
    gen_hypergraph
    (fun h ->
      let tw = fst (Tree_decomposition.treewidth_exact h) in
      let fhw = fst (Widths.fhw_exact h) in
      let a = max 1 (Hypergraph.arity h) in
      float_of_int tw <= (float_of_int a *. fhw) -. 1.0 +. 1e-6)

(* Lemma 12 instances: fhw <= ghw <= tw + 1 on every hypergraph. *)
let prop_width_chain =
  QCheck2.Test.make ~count:60 ~name:"fhw <= ghw <= tw+1" gen_hypergraph
    (fun h ->
      let tw = fst (Tree_decomposition.treewidth_exact h) in
      let fhw = fst (Widths.fhw_exact h) in
      let ghw = Widths.ghw_exact h in
      fhw <= ghw +. 1e-6 && ghw <= float_of_int (tw + 1) +. 1e-6)

let tests =
  [
    Alcotest.test_case "fcn triangle" `Quick test_fcn_triangle;
    Alcotest.test_case "fcn single edge" `Quick test_fcn_single_edge;
    Alcotest.test_case "fcn isolated vertex" `Quick test_fcn_isolated;
    Alcotest.test_case "integral cover" `Quick test_integral_cover;
    Alcotest.test_case "fhw values" `Quick test_fhw_values;
    Alcotest.test_case "ghw values" `Quick test_ghw_values;
    Alcotest.test_case "fractional independent set" `Quick test_fis;
    Alcotest.test_case "adaptive bounds" `Quick test_adaptive_bounds;
    QCheck_alcotest.to_alcotest prop_fcn_monotone;
    QCheck_alcotest.to_alcotest prop_obs34_with_fhw;
    QCheck_alcotest.to_alcotest prop_width_chain;
  ]

(* The LP weights returned by fcn really are a fractional edge cover. *)
let prop_fcn_certificate =
  QCheck2.Test.make ~count:60 ~name:"fcn returns a valid fractional cover"
    gen_hypergraph
    (fun h ->
      let x = Bitset.full ~capacity:(Hypergraph.num_vertices h) in
      let value, weights = Widths.fcn h x in
      let edges = Hypergraph.induced_edges h x in
      Array.length weights = List.length edges
      && Array.for_all (fun w -> w >= -1e-6) weights
      && Float.abs (Array.fold_left ( +. ) 0.0 weights -. value) < 1e-5
      && Bitset.for_all
           (fun v ->
             let covered =
               List.fold_left2
                 (fun acc e w -> if Bitset.mem e v then acc +. w else acc)
                 0.0 edges (Array.to_list weights)
             in
             covered >= 1.0 -. 1e-5)
           x)

let tests = tests @ [ QCheck_alcotest.to_alcotest prop_fcn_certificate ]
