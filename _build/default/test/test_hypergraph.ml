open Ac_hypergraph

let bs capacity l = Bitset.of_list ~capacity l

let test_create_dedup () =
  let h = Hypergraph.create ~num_vertices:4 [ [ 0; 1 ]; [ 1; 0 ]; [ 2; 3 ] ] in
  Alcotest.(check int) "dedup edges" 2 (Hypergraph.num_edges h);
  Alcotest.(check int) "arity" 2 (Hypergraph.arity h)

let test_families () =
  Alcotest.(check int) "path edges" 4 (Hypergraph.num_edges (Hypergraph.path 5));
  Alcotest.(check int) "cycle edges" 5 (Hypergraph.num_edges (Hypergraph.cycle 5));
  Alcotest.(check int) "clique edges" 10 (Hypergraph.num_edges (Hypergraph.clique 5));
  Alcotest.(check int) "star edges" 4 (Hypergraph.num_edges (Hypergraph.star 4));
  Alcotest.(check int) "grid 2x3 edges" 7 (Hypergraph.num_edges (Hypergraph.grid 2 3));
  let hc = Hypergraph.hypercycle 3 in
  Alcotest.(check int) "hypercycle vertices" 6 (Hypergraph.num_vertices hc);
  Alcotest.(check int) "hypercycle arity" 3 (Hypergraph.arity hc)

let test_induced () =
  let h = Hypergraph.create ~num_vertices:4 [ [ 0; 1; 2 ]; [ 2; 3 ] ] in
  let sub = Hypergraph.induced_edges h (bs 4 [ 0; 2; 3 ]) in
  let sorted = List.sort Bitset.compare sub in
  Alcotest.(check int) "two induced edges" 2 (List.length sorted);
  Alcotest.(check bool) "contains {0,2}" true
    (List.exists (Bitset.equal (bs 4 [ 0; 2 ])) sorted);
  Alcotest.(check bool) "contains {2,3}" true
    (List.exists (Bitset.equal (bs 4 [ 2; 3 ])) sorted)

let test_primal () =
  let h = Hypergraph.create ~num_vertices:4 [ [ 0; 1; 2 ]; [ 2; 3 ] ] in
  let adj = Hypergraph.primal_adjacency h in
  Alcotest.(check (list int)) "adj 0" [ 1; 2 ] (Bitset.to_list adj.(0));
  Alcotest.(check (list int)) "adj 2" [ 0; 1; 3 ] (Bitset.to_list adj.(2));
  Alcotest.(check bool) "no self loop" false (Bitset.mem adj.(2) 2)

let test_covered () =
  let h = Hypergraph.create ~num_vertices:4 [ [ 0; 1; 2 ] ] in
  Alcotest.(check bool) "covered" true (Hypergraph.covered_by_edge h (bs 4 [ 0; 2 ]));
  Alcotest.(check bool) "not covered" false (Hypergraph.covered_by_edge h (bs 4 [ 0; 3 ]))

let test_incident () =
  let h = Hypergraph.create ~num_vertices:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
  Alcotest.(check int) "two incident" 2 (List.length (Hypergraph.incident h 1))

let prop_induced_subset =
  QCheck2.Test.make ~count:100 ~name:"induced edges are subsets of X"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 6) (list_size (int_range 1 3) (int_range 0 7)))
        (list_size (int_range 0 8) (int_range 0 7)))
    (fun (edges, x) ->
      let h = Hypergraph.create ~num_vertices:8 edges in
      let xset = bs 8 x in
      List.for_all (fun e -> Bitset.subset e xset) (Hypergraph.induced_edges h xset))

let tests =
  [
    Alcotest.test_case "create dedup" `Quick test_create_dedup;
    Alcotest.test_case "families" `Quick test_families;
    Alcotest.test_case "induced" `Quick test_induced;
    Alcotest.test_case "primal adjacency" `Quick test_primal;
    Alcotest.test_case "covered_by_edge" `Quick test_covered;
    Alcotest.test_case "incident" `Quick test_incident;
    QCheck_alcotest.to_alcotest prop_induced_subset;
  ]
