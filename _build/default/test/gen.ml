(* Shared random generators for query/database pairs. *)

module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure

open QCheck2.Gen

(* Random ECQ over 2–4 variables with symbols E/2, R/2, P/1; every
   variable is covered (uncovered ones get a unary P atom). *)
let ecq ~allow_neg ~allow_diseq =
  int_range 2 4 >>= fun num_vars ->
  int_range 0 num_vars >>= fun num_free ->
  list_size (int_range 1 3)
    (triple (oneofl [ `E; `R; `P ]) (int_range 0 (num_vars - 1))
       (int_range 0 (num_vars - 1)))
  >>= fun preds ->
  (if allow_neg then oneofl [ []; [ `Neg ] ] else return []) >>= fun neg ->
  (if allow_diseq then
     list_size (int_range 0 2)
       (pair (int_range 0 (num_vars - 1)) (int_range 0 (num_vars - 1)))
   else return [])
  >>= fun diseq_raw ->
  int_range 0 (num_vars - 1) >>= fun nv1 ->
  int_range 0 (num_vars - 1) >>= fun nv2 ->
  let atoms =
    List.map
      (fun (sym, a, b) ->
        match sym with
        | `E -> Ecq.Atom ("E", [| a; b |])
        | `R -> Ecq.Atom ("R", [| a; b |])
        | `P -> Ecq.Atom ("P", [| a |]))
      preds
  in
  let atoms =
    atoms
    @ (match neg with [ `Neg ] -> [ Ecq.Neg_atom ("E", [| nv1; nv2 |]) ] | _ -> [])
  in
  let diseqs =
    List.filter_map
      (fun (i, j) -> if i <> j then Some (Ecq.Diseq (i, j)) else None)
      diseq_raw
  in
  let covered = Array.make num_vars false in
  List.iter
    (function
      | Ecq.Atom (_, vs) | Ecq.Neg_atom (_, vs) ->
          Array.iter (fun v -> covered.(v) <- true) vs
      | Ecq.Diseq (i, j) ->
          covered.(i) <- true;
          covered.(j) <- true)
    (atoms @ diseqs);
  let fillers =
    List.init num_vars Fun.id
    |> List.filter_map (fun v ->
           if covered.(v) then None else Some (Ecq.Atom ("P", [| v |])))
  in
  return (Ecq.make ~num_free ~num_vars (atoms @ fillers @ diseqs))

(* A database compatible with any query built by [ecq]. *)
let db =
  int_range 2 5 >>= fun u ->
  list_size (int_range 0 12) (pair (int_range 0 (u - 1)) (int_range 0 (u - 1)))
  >>= fun es ->
  list_size (int_range 0 12) (pair (int_range 0 (u - 1)) (int_range 0 (u - 1)))
  >>= fun rs ->
  list_size (int_range 0 4) (int_range 0 (u - 1)) >>= fun ps ->
  let s = Structure.create ~universe_size:u in
  Structure.declare s "E" ~arity:2;
  Structure.declare s "R" ~arity:2;
  Structure.declare s "P" ~arity:1;
  List.iter (fun (a, b) -> Structure.add_fact s "E" [| a; b |]) es;
  List.iter (fun (a, b) -> Structure.add_fact s "R" [| a; b |]) rs;
  List.iter (fun a -> Structure.add_fact s "P" [| a |]) ps;
  return s

let ecq_with_db ~allow_neg ~allow_diseq = pair (ecq ~allow_neg ~allow_diseq) db
