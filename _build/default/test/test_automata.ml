open Ac_automata

(* A deterministic automaton accepting trees whose every label is 0, over
   alphabet {0, 1}: one state, Stop/One/Two transitions on symbol 0. *)
let all_zero_automaton () =
  let a = Tree_automaton.create ~num_states:1 ~num_symbols:2 ~initial:0 in
  Tree_automaton.add_transition a ~state:0 ~symbol:0 Tree_automaton.Stop;
  Tree_automaton.add_transition a ~state:0 ~symbol:0 (Tree_automaton.One 0);
  Tree_automaton.add_transition a ~state:0 ~symbol:0 (Tree_automaton.Two (0, 0));
  a

(* Nondeterministic: accepts trees containing at least one label 1.
   State 0 = "must still see a 1", state 1 = "anything goes". *)
let contains_one_automaton () =
  let a = Tree_automaton.create ~num_states:2 ~num_symbols:2 ~initial:0 in
  (* state 1: universal *)
  List.iter
    (fun sym ->
      Tree_automaton.add_transition a ~state:1 ~symbol:sym Tree_automaton.Stop;
      Tree_automaton.add_transition a ~state:1 ~symbol:sym (Tree_automaton.One 1);
      Tree_automaton.add_transition a ~state:1 ~symbol:sym (Tree_automaton.Two (1, 1)))
    [ 0; 1 ];
  (* state 0 on symbol 1: satisfied, continue universally *)
  Tree_automaton.add_transition a ~state:0 ~symbol:1 Tree_automaton.Stop;
  Tree_automaton.add_transition a ~state:0 ~symbol:1 (Tree_automaton.One 1);
  Tree_automaton.add_transition a ~state:0 ~symbol:1 (Tree_automaton.Two (1, 1));
  (* state 0 on symbol 0: delegate the obligation to some child *)
  Tree_automaton.add_transition a ~state:0 ~symbol:0 (Tree_automaton.One 0);
  Tree_automaton.add_transition a ~state:0 ~symbol:0 (Tree_automaton.Two (0, 1));
  Tree_automaton.add_transition a ~state:0 ~symbol:0 (Tree_automaton.Two (1, 0));
  a

let test_ltree_basics () =
  let t = Ltree.node 1 [ Ltree.leaf 0; Ltree.node 2 [ Ltree.leaf 0 ] ] in
  Alcotest.(check int) "size" 4 (Ltree.size t);
  Alcotest.(check bool) "equal" true
    (Ltree.equal t (Ltree.node 1 [ Ltree.leaf 0; Ltree.node 2 [ Ltree.leaf 0 ] ]));
  Alcotest.(check bool) "distinct ids" true
    (t.Ltree.id <> (Ltree.leaf 0).Ltree.id);
  Alcotest.(check int) "shape size" 4 (Ltree.shape_size (Ltree.shape_of t))

let test_shapes_with_size () =
  (* ordered trees with ≤2 children: T(1)=1, T(2)=1 (unary chain),
     T(3) = T(2) + T(1)·T(1) = 2, T(4) = T(3) + 2·T(1)T(2) = 4 *)
  Alcotest.(check int) "n=1" 1 (List.length (Ltree.shapes_with_size 1));
  Alcotest.(check int) "n=2" 1 (List.length (Ltree.shapes_with_size 2));
  Alcotest.(check int) "n=3" 2 (List.length (Ltree.shapes_with_size 3));
  Alcotest.(check int) "n=4" 4 (List.length (Ltree.shapes_with_size 4));
  List.iter
    (fun s -> Alcotest.(check int) "size" 4 (Ltree.shape_size s))
    (Ltree.shapes_with_size 4)

let test_labelings () =
  let shape = Ltree.Shape [ Ltree.Shape [] ] in
  Alcotest.(check int) "2^2 labelings" 4 (List.length (Ltree.labelings ~alphabet:2 shape))

let test_accepts () =
  let a = all_zero_automaton () in
  Alcotest.(check bool) "all zero" true (Tree_automaton.accepts a (Ltree.node 0 [ Ltree.leaf 0 ]));
  Alcotest.(check bool) "has a one" false (Tree_automaton.accepts a (Ltree.node 0 [ Ltree.leaf 1 ]));
  let b = contains_one_automaton () in
  Alcotest.(check bool) "contains one" true
    (Tree_automaton.accepts b (Ltree.node 0 [ Ltree.leaf 0; Ltree.leaf 1 ]));
  Alcotest.(check bool) "no one" false
    (Tree_automaton.accepts b (Ltree.node 0 [ Ltree.leaf 0; Ltree.leaf 0 ]))

let test_run_states () =
  let b = contains_one_automaton () in
  Alcotest.(check (list int)) "leaf 1 runs from both" [ 0; 1 ]
    (Tree_automaton.run_states b (Ltree.leaf 1));
  Alcotest.(check (list int)) "leaf 0 runs from 1 only" [ 1 ]
    (Tree_automaton.run_states b (Ltree.leaf 0))

let test_exact_vs_brute_fixed_shapes () =
  let automata = [ ("all-zero", all_zero_automaton ()); ("contains-one", contains_one_automaton ()) ] in
  let shapes = Ltree.shapes_with_size 4 @ Ltree.shapes_with_size 3 in
  List.iter
    (fun (name, a) ->
      List.iter
        (fun shape ->
          let dp = Exact_ta.count_fixed_shape a shape in
          let brute = Exact_ta.count_fixed_shape_brute a shape in
          Alcotest.(check int) (name ^ " dp=brute") brute dp)
        shapes)
    automata

let test_count_slice () =
  (* all-zero automaton accepts exactly one labeling per shape *)
  let a = all_zero_automaton () in
  Alcotest.(check int) "slice 3 = #shapes" 2 (Exact_ta.count_slice a 3);
  (* contains-one: over shapes of size 2 (one shape, 4 labelings), those
     containing a 1: 3 *)
  let b = contains_one_automaton () in
  Alcotest.(check int) "slice 2" 3 (Exact_ta.count_slice b 2)

(* Random nondeterministic automata: DP count = brute count. *)
let gen_automaton =
  QCheck2.Gen.(
    let states = 3 and symbols = 2 in
    list_size (int_range 1 12)
      (triple (int_range 0 (states - 1)) (int_range 0 (symbols - 1))
         (int_range 0 4))
    >>= fun raw ->
    let a = Tree_automaton.create ~num_states:states ~num_symbols:symbols ~initial:0 in
    List.iter
      (fun (s, sym, kind) ->
        let rhs =
          match kind with
          | 0 -> Tree_automaton.Stop
          | 1 -> Tree_automaton.One ((s + 1) mod states)
          | 2 -> Tree_automaton.One ((s + 2) mod states)
          | 3 -> Tree_automaton.Two (s, (s + 1) mod states)
          | _ -> Tree_automaton.Two ((s + 1) mod states, s)
        in
        Tree_automaton.add_transition a ~state:s ~symbol:sym rhs)
      raw;
    return a)

let prop_dp_matches_brute =
  QCheck2.Test.make ~count:100 ~name:"stateset DP = brute enumeration"
    QCheck2.Gen.(pair gen_automaton (int_range 1 4))
    (fun (a, n) ->
      List.for_all
        (fun shape ->
          Exact_ta.count_fixed_shape a shape = Exact_ta.count_fixed_shape_brute a shape)
        (Ltree.shapes_with_size n))

let prop_acjr_close_on_random =
  QCheck2.Test.make ~count:40 ~name:"ACJR estimate close to exact"
    QCheck2.Gen.(pair gen_automaton (int_range 2 4))
    (fun (a, n) ->
      List.for_all
        (fun shape ->
          let exact = float_of_int (Exact_ta.count_fixed_shape a shape) in
          let config = Acjr.default_config ~seed:11 () in
          let est = Acjr.estimate_fixed_shape ~config a shape in
          if exact = 0.0 then est = 0.0
          else Float.abs (est -. exact) /. exact < 0.5)
        (Ltree.shapes_with_size n))

let test_acjr_sample_accepted () =
  let a = contains_one_automaton () in
  let shape = Ltree.Shape [ Ltree.Shape []; Ltree.Shape [] ] in
  let config = Acjr.default_config ~seed:3 () in
  match Acjr.sample_fixed_shape ~config a shape with
  | None -> Alcotest.fail "expected a sample"
  | Some t -> Alcotest.(check bool) "sampled tree accepted" true (Tree_automaton.accepts a t)

let test_acjr_zero () =
  (* automaton with no transitions on the root symbol: estimate 0 *)
  let a = Tree_automaton.create ~num_states:1 ~num_symbols:1 ~initial:0 in
  let shape = Ltree.Shape [] in
  let config = Acjr.default_config ~seed:5 () in
  Alcotest.(check (float 1e-9)) "zero" 0.0 (Acjr.estimate_fixed_shape ~config a shape)

let tests =
  [
    Alcotest.test_case "ltree basics" `Quick test_ltree_basics;
    Alcotest.test_case "shapes with size" `Quick test_shapes_with_size;
    Alcotest.test_case "labelings" `Quick test_labelings;
    Alcotest.test_case "accepts" `Quick test_accepts;
    Alcotest.test_case "run states" `Quick test_run_states;
    Alcotest.test_case "exact vs brute fixed shapes" `Quick test_exact_vs_brute_fixed_shapes;
    Alcotest.test_case "count slice" `Quick test_count_slice;
    Alcotest.test_case "acjr sample accepted" `Quick test_acjr_sample_accepted;
    Alcotest.test_case "acjr zero" `Quick test_acjr_zero;
    QCheck_alcotest.to_alcotest prop_dp_matches_brute;
    QCheck_alcotest.to_alcotest prop_acjr_close_on_random;
  ]

(* the N-slice estimator against exact slice counting *)
let prop_slice_estimate_close =
  QCheck2.Test.make ~count:30 ~name:"ACJR N-slice estimate close to exact"
    QCheck2.Gen.(pair gen_automaton (int_range 1 4))
    (fun (a, n) ->
      let exact = float_of_int (Exact_ta.count_slice a n) in
      let config = Acjr.default_config ~seed:17 () in
      let est = Acjr.estimate_slice ~config a n in
      if exact = 0.0 then est = 0.0
      else Float.abs (est -. exact) /. exact < 0.5)

let test_slice_known () =
  let a = all_zero_automaton () in
  let config = Acjr.default_config ~seed:19 () in
  (* one accepted labeling per shape: slice n = #shapes(n) = 1, 1, 2, 4 *)
  Alcotest.(check (float 1e-6)) "n=1" 1.0 (Acjr.estimate_slice ~config a 1);
  Alcotest.(check (float 1e-6)) "n=2" 1.0 (Acjr.estimate_slice ~config a 2);
  Alcotest.(check (float 0.6)) "n=3" 2.0 (Acjr.estimate_slice ~config a 3);
  Alcotest.(check (float 1.2)) "n=4" 4.0 (Acjr.estimate_slice ~config a 4)

let test_slice_sampler () =
  let a = contains_one_automaton () in
  let config = Acjr.default_config ~seed:23 () in
  let est, draw = Acjr.slice_estimator ~config a 3 in
  Alcotest.(check bool) "positive" true (est > 0.0);
  for _ = 1 to 10 do
    match draw () with
    | None -> Alcotest.fail "expected a sample"
    | Some t ->
        Alcotest.(check int) "size 3" 3 (Ltree.size t);
        Alcotest.(check bool) "accepted" true (Tree_automaton.accepts a t)
  done

let test_slice_zero () =
  let a = Tree_automaton.create ~num_states:1 ~num_symbols:1 ~initial:0 in
  let config = Acjr.default_config ~seed:29 () in
  Alcotest.(check (float 1e-9)) "no transitions" 0.0 (Acjr.estimate_slice ~config a 2)

let tests =
  tests
  @ [
      Alcotest.test_case "slice known values" `Quick test_slice_known;
      Alcotest.test_case "slice sampler" `Quick test_slice_sampler;
      Alcotest.test_case "slice zero" `Quick test_slice_zero;
      QCheck_alcotest.to_alcotest prop_slice_estimate_close;
    ]
