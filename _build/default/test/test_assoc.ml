open Ac_query
open Ac_relational
module Assoc = Approxcount.Assoc
module Exact = Approxcount.Exact

let friends () = Ac_workload.Query_families.friends ()

let friends_db () =
  Structure.of_facts ~universe_size:4
    [
      ("F", [| 0; 1 |]);
      ("F", [| 0; 2 |]);
      ("F", [| 0; 3 |]);
      ("F", [| 1; 2 |]);
    ]

let test_source () =
  let q = friends () in
  let a = Assoc.source q in
  Alcotest.(check int) "universe = vars" 3 (Structure.universe_size a);
  Alcotest.(check (list string)) "symbols" [ "F" ] (Structure.symbols a);
  Alcotest.(check bool) "fact (0,1)" true (Structure.holds a "F" [| 0; 1 |]);
  Alcotest.(check bool) "fact (0,2)" true (Structure.holds a "F" [| 0; 2 |]);
  (* Observation 19: ‖A(φ)‖ ≤ 3‖φ‖ *)
  Alcotest.(check bool) "Observation 19" true (Structure.size a <= 3 * Ecq.size q)

let test_source_negation () =
  let q =
    Ecq.make ~num_free:1 ~num_vars:2
      [ Ecq.Atom ("E", [| 0; 1 |]); Ecq.Neg_atom ("E", [| 1; 0 |]) ]
  in
  let a = Assoc.source q in
  Alcotest.(check (list string)) "symbols incl negated" [ "E"; "~E" ]
    (Structure.symbols a);
  Alcotest.(check bool) "negated fact" true (Structure.holds a "~E" [| 1; 0 |])

let test_target () =
  let q =
    Ecq.make ~num_free:1 ~num_vars:2
      [ Ecq.Atom ("E", [| 0; 1 |]); Ecq.Neg_atom ("E", [| 1; 0 |]) ]
  in
  let db = Structure.of_facts ~universe_size:3 [ ("E", [| 0; 1 |]); ("E", [| 1; 2 |]) ] in
  let b = Assoc.target q db in
  Alcotest.(check bool) "positive copied" true (Structure.holds b "E" [| 0; 1 |]);
  Alcotest.(check bool) "complement holds" true (Structure.holds b "~E" [| 1; 0 |]);
  Alcotest.(check bool) "complement excludes facts" false
    (Structure.holds b "~E" [| 0; 1 |]);
  Alcotest.(check int) "complement size" 7
    (Relation.cardinality (Structure.relation b "~E"));
  (* Observation 21: ‖B‖ ≤ 2‖φ‖(‖D‖ + ν|U|^a) *)
  let nu = Ecq.num_negated q and a_max = 2 in
  let bound =
    2 * Ecq.size q
    * (Structure.size db + (nu * int_of_float (float_of_int (Structure.universe_size db) ** float_of_int a_max)))
  in
  Alcotest.(check bool) "Observation 21" true (Structure.size b <= bound)

(* Equation (2) without disequalities: solutions = homomorphisms. *)
let prop_hom_equals_solutions =
  QCheck2.Test.make ~count:150 ~name:"Hom(A,B) = solutions without diseqs"
    (Gen.ecq_with_db ~allow_neg:true ~allow_diseq:false)
    (fun (q, db) ->
      let inst = Assoc.hom_instance q db in
      let hom_count = Ac_hom.Hom.count_brute_force inst in
      (* count solutions directly *)
      let n = Ecq.num_vars q and u = Structure.universe_size db in
      let solutions = ref 0 in
      let assignment = Array.make n 0 in
      let rec go i =
        if i = n then begin
          if Ecq.satisfied_by q db assignment then incr solutions
        end
        else
          for v = 0 to u - 1 do
            assignment.(i) <- v;
            go (i + 1)
          done
      in
      go 0;
      hom_count = !solutions)

(* Lemma 30 on concrete instances: the hat-structure Hom instance agrees
   with direct answer-in-box checking, when quantifying over colourings.
   We check both directions statistically: if an answer exists in the box,
   some random colouring admits a hom (with many trials); if none exists,
   no colouring ever does (64 trials). *)
let prop_lemma30 =
  QCheck2.Test.make ~count:30 ~name:"Lemma 30: hat structures vs direct check"
    QCheck2.Gen.(
      pair (Gen.ecq_with_db ~allow_neg:false ~allow_diseq:true) (int_range 0 1000))
    (fun ((q, db), seed) ->
      let l = Ecq.num_free q in
      if l = 0 || Structure.universe_size db = 0 then true
      else begin
        let rng = Random.State.make [| seed |] in
        let u = Structure.universe_size db in
        (* random aligned box *)
        let parts =
          Array.init l (fun _ ->
              let kept =
                List.filter (fun _ -> Random.State.bool rng) (List.init u Fun.id)
              in
              Array.of_list kept)
        in
        if Array.exists (fun p -> Array.length p = 0) parts then true
        else begin
          let hat_a = Assoc.hat_source q in
          let hom_for_colouring colours =
            let hat_b = Assoc.hat_target q db ~parts colours in
            Ac_hom.Hom.decide_backtracking
              { Ac_hom.Hom.source = hat_a; target = hat_b }
          in
          (* ground truth: any answer with free values inside the box? *)
          let expected =
            Exact.answers q db
            |> List.exists (fun tau ->
                   Array.for_all Fun.id
                     (Array.mapi (fun i v -> Array.exists (( = ) v) parts.(i)) tau))
          in
          let trials = 64 in
          let found = ref false in
          for _ = 1 to trials do
            if not !found then
              if hom_for_colouring (Assoc.random_colouring ~rng q ~universe_size:u)
              then found := true
          done;
          if expected then !found (* may flake with prob (3/4)^64 at |Δ|=1 per missing pair *)
          else not !found
        end
      end)

let test_random_colouring_shape () =
  let q = friends () in
  let rng = Random.State.make [| 5 |] in
  let colours = Assoc.random_colouring ~rng q ~universe_size:6 in
  Alcotest.(check int) "one per diseq" 1 (List.length colours);
  let (i, j), f = List.hd colours in
  Alcotest.(check (pair int int)) "pair sorted" (1, 2) (i, j);
  Alcotest.(check int) "function over U" 6 (Array.length f)

let test_negated_symbol () =
  Alcotest.(check string) "prefix" "~E" (Assoc.negated_symbol "E")

let test_friends_pipeline () =
  (* directed F facts: only person 0 has two distinct F-successors *)
  let q = friends () and db = friends_db () in
  Alcotest.(check int) "one answer" 1 (Exact.by_join_projection q db)

let tests =
  [
    Alcotest.test_case "A(phi)" `Quick test_source;
    Alcotest.test_case "A(phi) negation" `Quick test_source_negation;
    Alcotest.test_case "B(phi,D)" `Quick test_target;
    Alcotest.test_case "random colouring shape" `Quick test_random_colouring_shape;
    Alcotest.test_case "negated symbol" `Quick test_negated_symbol;
    Alcotest.test_case "friends concrete" `Quick test_friends_pipeline;
    QCheck_alcotest.to_alcotest prop_hom_equals_solutions;
    QCheck_alcotest.to_alcotest prop_lemma30;
  ]
