open Ac_query
open Ac_relational

let test_make_basic () =
  let q =
    Ecq.make ~num_free:1 ~num_vars:3
      [ Ecq.Atom ("F", [| 0; 1 |]); Ecq.Atom ("F", [| 0; 2 |]); Ecq.Diseq (1, 2) ]
  in
  Alcotest.(check int) "free" 1 (Ecq.num_free q);
  Alcotest.(check int) "existential" 2 (Ecq.num_existential q);
  (* ‖φ‖ = 3 vars + 2 + 2 + 2 = 9 *)
  Alcotest.(check int) "size" 9 (Ecq.size q);
  Alcotest.(check int) "predicates" 2 (Ecq.num_predicates q);
  Alcotest.(check int) "negated" 0 (Ecq.num_negated q);
  Alcotest.(check bool) "is dcq" true (Ecq.is_dcq q);
  Alcotest.(check bool) "not cq" false (Ecq.is_cq q);
  Alcotest.(check (list (pair int int))) "delta" [ (1, 2) ] (Ecq.delta q)

let test_make_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  in
  expect_invalid "var out of range" (fun () ->
      Ecq.make ~num_free:1 ~num_vars:1 [ Ecq.Atom ("E", [| 0; 1 |]) ]);
  expect_invalid "unused variable" (fun () ->
      Ecq.make ~num_free:1 ~num_vars:2 [ Ecq.Atom ("E", [| 0 |]) ]);
  expect_invalid "self disequality" (fun () ->
      Ecq.make ~num_free:1 ~num_vars:1 [ Ecq.Atom ("E", [| 0 |]); Ecq.Diseq (0, 0) ]);
  expect_invalid "conflicting arity" (fun () ->
      Ecq.make ~num_free:1 ~num_vars:2
        [ Ecq.Atom ("E", [| 0; 1 |]); Ecq.Atom ("E", [| 0 |]) ]);
  expect_invalid "free > vars" (fun () ->
      Ecq.make ~num_free:3 ~num_vars:2 [ Ecq.Atom ("E", [| 0; 1 |]) ])

let test_hypergraph () =
  let q =
    Ecq.make ~num_free:0 ~num_vars:3
      [
        Ecq.Atom ("E", [| 0; 1 |]);
        Ecq.Neg_atom ("R", [| 1; 2 |]);
        Ecq.Diseq (0, 2);
      ]
  in
  let h = Ecq.hypergraph q in
  Alcotest.(check int) "vertices" 3 (Ac_hypergraph.Hypergraph.num_vertices h);
  (* edges from the atom and the negated atom, none from the disequality *)
  Alcotest.(check int) "edges" 2 (Ac_hypergraph.Hypergraph.num_edges h)

let test_hypergraph_diseq_only_var () =
  (* a variable occurring only in disequalities gets a singleton edge *)
  let q =
    Ecq.make ~num_free:2 ~num_vars:2 [ Ecq.Atom ("P", [| 0 |]); Ecq.Diseq (0, 1) ]
  in
  let h = Ecq.hypergraph q in
  Alcotest.(check int) "vertices" 2 (Ac_hypergraph.Hypergraph.num_vertices h);
  Alcotest.(check int) "edges incl. singleton" 2 (Ac_hypergraph.Hypergraph.num_edges h)

let test_signature_compat () =
  let q =
    Ecq.make ~num_free:1 ~num_vars:2
      [ Ecq.Atom ("E", [| 0; 1 |]); Ecq.Neg_atom ("P", [| 1 |]) ]
  in
  Alcotest.(check (list (pair string int))) "signature" [ ("E", 2); ("P", 1) ]
    (Ecq.signature q);
  let db = Structure.of_facts ~universe_size:3 [ ("E", [| 0; 1 |]); ("P", [| 0 |]) ] in
  Alcotest.(check bool) "compatible" true (Ecq.compatible_with q db);
  let db2 = Structure.of_facts ~universe_size:3 [ ("E", [| 0; 1 |]) ] in
  Alcotest.(check bool) "missing symbol" false (Ecq.compatible_with q db2);
  let db3 = Structure.of_facts ~universe_size:3 [ ("E", [| 0 |]); ("P", [| 0 |]) ] in
  Alcotest.(check bool) "wrong arity" false (Ecq.compatible_with q db3)

let test_satisfied_by () =
  let q =
    Ecq.make ~num_free:1 ~num_vars:3
      [
        Ecq.Atom ("F", [| 0; 1 |]);
        Ecq.Atom ("F", [| 0; 2 |]);
        Ecq.Neg_atom ("F", [| 1; 2 |]);
        Ecq.Diseq (1, 2);
      ]
  in
  let db =
    Structure.of_facts ~universe_size:4
      [ ("F", [| 0; 1 |]); ("F", [| 0; 2 |]); ("F", [| 0; 3 |]); ("F", [| 1; 2 |]) ]
  in
  Alcotest.(check bool) "good" true (Ecq.satisfied_by q db [| 0; 1; 3 |]);
  Alcotest.(check bool) "diseq violated" false (Ecq.satisfied_by q db [| 0; 1; 1 |]);
  Alcotest.(check bool) "negation violated" false (Ecq.satisfied_by q db [| 0; 1; 2 |]);
  Alcotest.(check bool) "atom violated" false (Ecq.satisfied_by q db [| 1; 0; 3 |])

let test_parse () =
  let q = Ecq.parse "ans(x, y) :- E(x, y), E(y, z), !R(x, z), x != z" in
  Alcotest.(check int) "free" 2 (Ecq.num_free q);
  Alcotest.(check int) "vars" 3 (Ecq.num_vars q);
  Alcotest.(check int) "negated" 1 (Ecq.num_negated q);
  Alcotest.(check (list (pair int int))) "delta" [ (0, 2) ] (Ecq.delta q);
  Alcotest.(check string) "var name" "z" (Ecq.var_name q 2)

let test_parse_not_keyword () =
  let q = Ecq.parse "ans(x) :- E(x, y), not R(y, y)" in
  Alcotest.(check int) "negated" 1 (Ecq.num_negated q)

let test_parse_boolean () =
  let q = Ecq.parse "ans() :- E(x, y)" in
  Alcotest.(check int) "no free" 0 (Ecq.num_free q);
  Alcotest.(check int) "two vars" 2 (Ecq.num_vars q)

let test_parse_roundtrip () =
  let original = "ans(x, y) :- E(x, y), E(y, z), !R(x, z), x != z" in
  let q = Ecq.parse original in
  let q2 = Ecq.parse (Ecq.to_string q) in
  Alcotest.(check int) "same size" (Ecq.size q) (Ecq.size q2);
  Alcotest.(check int) "same free" (Ecq.num_free q) (Ecq.num_free q2);
  Alcotest.(check (list (pair int int))) "same delta" (Ecq.delta q) (Ecq.delta q2)

let test_parse_errors () =
  let expect_fail s =
    match Ecq.parse s with
    | exception Failure _ -> ()
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail ("expected parse failure: " ^ s)
  in
  expect_fail "foo(x) :- E(x, x)";
  expect_fail "ans(x) :- ";
  expect_fail "ans(x) :- E(x";
  expect_fail "ans(x, x) :- E(x, x)"

let test_add_diseqs () =
  let q = Ecq.parse "ans(x, y) :- E(x, y)" in
  let q' = Ecq.all_pairs_diseq_free q in
  Alcotest.(check (list (pair int int))) "all pairs" [ (0, 1) ] (Ecq.delta q');
  (* idempotent *)
  let q'' = Ecq.all_pairs_diseq_free q' in
  Alcotest.(check (list (pair int int))) "idempotent" [ (0, 1) ] (Ecq.delta q'')

let tests =
  [
    Alcotest.test_case "make basic" `Quick test_make_basic;
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "hypergraph" `Quick test_hypergraph;
    Alcotest.test_case "hypergraph diseq-only var" `Quick test_hypergraph_diseq_only_var;
    Alcotest.test_case "signature compat" `Quick test_signature_compat;
    Alcotest.test_case "satisfied_by" `Quick test_satisfied_by;
    Alcotest.test_case "parse" `Quick test_parse;
    Alcotest.test_case "parse not keyword" `Quick test_parse_not_keyword;
    Alcotest.test_case "parse boolean" `Quick test_parse_boolean;
    Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "add diseqs" `Quick test_add_diseqs;
  ]

let test_parse_equalities () =
  (* §1.1 rewriting: x = z unifies an existential variable into a free one *)
  let q = Ecq.parse "ans(x) :- E(x, y), E(y, z), x = z" in
  Alcotest.(check int) "vars after unification" 2 (Ecq.num_vars q);
  Alcotest.(check int) "free unchanged" 1 (Ecq.num_free q);
  (* the rewritten query is E(x, y) ∧ E(y, x) *)
  let db =
    Ac_relational.Structure.of_facts ~universe_size:3
      [ ("E", [| 0; 1 |]); ("E", [| 1; 0 |]); ("E", [| 1; 2 |]) ]
  in
  Alcotest.(check bool) "semantics" true
    (Ecq.satisfied_by q db [| 0; 1 |]);
  Alcotest.(check bool) "semantics neg" false (Ecq.satisfied_by q db [| 1; 2 |])

let test_parse_equalities_existential () =
  let q = Ecq.parse "ans(x) :- E(x, y), R(z, w), y = z" in
  Alcotest.(check int) "vars" 3 (Ecq.num_vars q);
  Alcotest.(check int) "atoms" 2 (List.length (Ecq.atoms q))

let test_parse_equalities_two_free_rejected () =
  match Ecq.parse "ans(x, y) :- E(x, y), x = y" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "two free variables equated must be rejected"

let test_parse_equality_chain () =
  (* a chain a = b = c collapses to one variable *)
  let q = Ecq.parse "ans(x) :- E(x, a), P(b), P(c), a = b, b = c" in
  Alcotest.(check int) "chain collapsed" 2 (Ecq.num_vars q)

let tests =
  tests
  @ [
      Alcotest.test_case "parse equalities" `Quick test_parse_equalities;
      Alcotest.test_case "parse equalities existential" `Quick
        test_parse_equalities_existential;
      Alcotest.test_case "parse equality two free rejected" `Quick
        test_parse_equalities_two_free_rejected;
      Alcotest.test_case "parse equality chain" `Quick test_parse_equality_chain;
    ]
