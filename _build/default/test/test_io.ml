open Ac_relational

let test_roundtrip () =
  let s =
    Structure.of_facts ~universe_size:5
      [ ("E", [| 0; 1 |]); ("E", [| 1; 2 |]); ("P", [| 4 |]) ]
  in
  let s' = Structure_io.of_string (Structure_io.to_string s) in
  Alcotest.(check bool) "roundtrip" true (Structure.equal s s')

let test_parse_with_comments () =
  let s =
    Structure_io.of_string
      "# a comment\n\nuniverse 3\nE 0 1 # trailing comment\n  E 1 2  \n"
  in
  Alcotest.(check int) "universe" 3 (Structure.universe_size s);
  Alcotest.(check bool) "fact" true (Structure.holds s "E" [| 0; 1 |]);
  Alcotest.(check bool) "trimmed" true (Structure.holds s "E" [| 1; 2 |])

let expect_failure name input =
  match Structure_io.of_string input with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail name

let test_errors () =
  expect_failure "missing universe" "E 0 1\n";
  expect_failure "bad element" "universe 3\nE 0 x\n";
  expect_failure "out of universe" "universe 2\nE 0 5\n";
  expect_failure "duplicate universe" "universe 2\nuniverse 3\n";
  expect_failure "empty" "";
  expect_failure "arity clash" "universe 3\nE 0 1\nE 0\n"

let test_save_load () =
  let s = Structure.of_facts ~universe_size:4 [ ("R", [| 0; 1; 2 |]) ] in
  let path = Filename.temp_file "acq_test" ".txt" in
  Structure_io.save path s;
  let s' = Structure_io.load path in
  Sys.remove path;
  Alcotest.(check bool) "save/load" true (Structure.equal s s')

let prop_roundtrip_random =
  QCheck2.Test.make ~count:60 ~name:"io roundtrip on random structures" Gen.db
    (fun db ->
      Ac_relational.Structure.equal db
        (Structure_io.of_string (Structure_io.to_string db)))

let tests =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "comments and whitespace" `Quick test_parse_with_comments;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "save/load" `Quick test_save_load;
    QCheck_alcotest.to_alcotest prop_roundtrip_random;
  ]
