module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Fpras = Approxcount.Fpras
module Exact = Approxcount.Exact
module Bitset = Ac_hypergraph.Bitset

(* Definition 47 reference implementation: α over the bag extends, per
   atom, to a consistent assignment hitting a fact. *)
let bag_solutions_brute q db bag =
  let bag_vars = Array.of_list (Bitset.to_list bag) in
  let u = Structure.universe_size db in
  let k = Array.length bag_vars in
  let alpha = Array.make k 0 in
  let atom_ok (name, scope) =
    let rel = Structure.relation db name in
    Ac_relational.Relation.fold
      (fun tuple acc ->
        acc
        ||
        (* tuple consistent with alpha on shared variables, and
           self-consistent on repeated ones *)
        let ok = ref true in
        let first = Hashtbl.create 4 in
        Array.iteri
          (fun pos v ->
            (match Hashtbl.find_opt first v with
            | None -> Hashtbl.replace first v pos
            | Some p0 -> if tuple.(pos) <> tuple.(p0) then ok := false);
            Array.iteri
              (fun i bv -> if bv = v && tuple.(pos) <> alpha.(i) then ok := false)
              bag_vars)
          scope;
        !ok)
      rel false
  in
  let atoms =
    List.filter_map
      (function
        | Ecq.Atom (name, scope) -> Some (name, scope)
        | Ecq.Neg_atom _ | Ecq.Diseq _ -> None)
      (Ecq.atoms q)
  in
  let out = ref [] in
  let rec go i =
    if i = k then begin
      if List.for_all atom_ok atoms then out := Array.copy alpha :: !out
    end
    else
      for v = 0 to u - 1 do
        alpha.(i) <- v;
        go (i + 1)
      done
  in
  if k = 0 then (if List.for_all atom_ok atoms then out := [ [||] ]) else go 0;
  !out

let sort_sols = List.sort compare

let prop_bag_solutions =
  QCheck2.Test.make ~count:100 ~name:"Lemma 48 bag solutions = Definition 47"
    QCheck2.Gen.(
      pair (Gen.ecq_with_db ~allow_neg:false ~allow_diseq:false) (int_range 0 1000))
    (fun ((q, db), seed) ->
      let n = Ecq.num_vars q in
      let rng = Random.State.make [| seed |] in
      let bag =
        Bitset.of_list ~capacity:n
          (List.filter (fun _ -> Random.State.bool rng) (List.init n Fun.id))
      in
      match Fpras.bag_solutions q db bag with
      | None ->
          (* some relation empty: reference must agree there are no
             solutions over the full bag *)
          Exact.by_join_projection q db = 0
      | Some sols -> sort_sols sols = sort_sols (bag_solutions_brute q db bag))

(* THE Lemma 52 property: automaton-accepted labelings are in bijection
   with answers — exact automaton count = exact answer count. *)
let prop_lemma52_bijection =
  QCheck2.Test.make ~count:120 ~name:"Lemma 52: |L(A)| = |Ans|"
    (Gen.ecq_with_db ~allow_neg:false ~allow_diseq:false)
    (fun (q, db) ->
      Fpras.exact_count_automaton q db = Exact.by_join_projection q db)

let prop_acjr_close =
  QCheck2.Test.make ~count:40 ~name:"FPRAS estimate close to exact on small"
    QCheck2.Gen.(pair (Gen.ecq_with_db ~allow_neg:false ~allow_diseq:false) (int_range 0 1000))
    (fun ((q, db), seed) ->
      let exact = float_of_int (Exact.by_join_projection q db) in
      let config = Ac_automata.Acjr.default_config ~seed () in
      let est = Fpras.approx_count ~config q db in
      if exact = 0.0 then est = 0.0
      else Float.abs (est -. exact) /. exact < 0.5)

let prop_sample_answers_valid =
  QCheck2.Test.make ~count:40 ~name:"FPRAS sampler returns genuine answers"
    QCheck2.Gen.(pair (Gen.ecq_with_db ~allow_neg:false ~allow_diseq:false) (int_range 0 1000))
    (fun ((q, db), seed) ->
      let config = Ac_automata.Acjr.default_config ~seed () in
      match Fpras.sample_answer ~config q db with
      | None -> Exact.by_join_projection q db = 0 || Ecq.num_free q = 0
      | Some tau -> Exact.is_answer q db tau)

let test_acyclic_join_concrete () =
  let q = Ac_workload.Query_families.acyclic_join () in
  let db =
    Structure.of_facts ~universe_size:4
      [
        ("R", [| 0; 1 |]);
        ("R", [| 2; 1 |]);
        ("S", [| 1; 3 |]);
        ("T", [| 1; 0 |]);
      ]
  in
  (* answers: (x, y) with R(x,z) ∧ S(z,y) ∧ T(z,w): z=1 works, x ∈ {0,2},
     y = 3 → 2 answers *)
  Alcotest.(check int) "exact" 2 (Exact.by_join_projection q db);
  Alcotest.(check int) "automaton" 2 (Fpras.exact_count_automaton q db)

let test_fractional_triangle_concrete () =
  let q = Ac_workload.Query_families.fractional_triangle () in
  let rng = Random.State.make [| 8 |] in
  let db =
    Ac_workload.Dbgen.random_structure ~rng ~universe_size:10
      [ ("E1", 2, 30); ("E2", 2, 30); ("E3", 2, 30) ]
  in
  let expected = Exact.by_join_projection q db in
  Alcotest.(check int) "fhw<hw family automaton count" expected
    (Fpras.exact_count_automaton q db)

let test_empty_relation_zero () =
  let q = Ac_workload.Query_families.acyclic_join () in
  let db =
    Structure.of_facts ~universe_size:3 [ ("R", [| 0; 1 |]); ("S", [| 1; 2 |]) ]
  in
  (* T missing entirely: incompatible *)
  (match Fpras.build q db with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected incompatibility");
  let db2 = Structure.copy db in
  Structure.declare db2 "T" ~arity:2;
  Alcotest.(check bool) "empty T relation → None" true (Fpras.build q db2 = None);
  Alcotest.(check (float 1e-9)) "approx 0" 0.0 (Fpras.approx_count q db2)

let test_build_stats () =
  let q = Ac_workload.Query_families.acyclic_join () in
  let rng = Random.State.make [| 4 |] in
  let db =
    Ac_workload.Dbgen.random_structure ~rng ~universe_size:8
      [ ("R", 2, 20); ("S", 2, 20); ("T", 2, 20) ]
  in
  match Fpras.build q db with
  | None -> Alcotest.fail "expected automaton"
  | Some b ->
      Alcotest.(check bool) "states positive" true (b.Fpras.num_states > 0);
      Alcotest.(check bool) "symbols <= states" true
        (b.Fpras.num_symbols <= b.Fpras.num_states);
      Alcotest.(check bool) "nodes positive" true (b.Fpras.num_nodes > 0)

let test_rejects_non_cq () =
  let q = Ac_workload.Query_families.friends () in
  let db = Structure.of_facts ~universe_size:2 [ ("F", [| 0; 1 |]) ] in
  match Fpras.build q db with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "DCQ must be rejected by the FPRAS"

let tests =
  [
    Alcotest.test_case "acyclic join concrete" `Quick test_acyclic_join_concrete;
    Alcotest.test_case "fractional triangle concrete" `Quick test_fractional_triangle_concrete;
    Alcotest.test_case "empty relation zero" `Quick test_empty_relation_zero;
    Alcotest.test_case "build stats" `Quick test_build_stats;
    Alcotest.test_case "rejects non-CQ" `Quick test_rejects_non_cq;
    QCheck_alcotest.to_alcotest prop_bag_solutions;
    QCheck_alcotest.to_alcotest prop_lemma52_bijection;
    QCheck_alcotest.to_alcotest prop_acjr_close;
    QCheck_alcotest.to_alcotest prop_sample_answers_valid;
  ]
