open Ac_dlm

(* Explicit ℓ-partite hypergraph: an edge is one local id per class. *)
let oracle_of_edges edges parts =
  not
    (List.exists
       (fun edge ->
         Array.for_all Fun.id
           (Array.mapi (fun i v -> Array.exists (( = ) v) parts.(i)) edge))
       edges)

let sort_edges = List.sort compare

let test_space_basics () =
  let s = Partite.space [| 3; 4 |] in
  Alcotest.(check int) "classes" 2 (Partite.num_classes s);
  Alcotest.(check int) "vertices" 7 (Partite.num_vertices s);
  let all = Partite.all s in
  Alcotest.(check (float 1e-9)) "tuple count" 12.0 (Partite.tuple_count all);
  Alcotest.(check bool) "not empty" false (Partite.is_empty_part all)

let test_align_permutations () =
  let s = Partite.space [| 2; 2 |] in
  (* general parts: W1 = {(0,0),(1,1)}, W2 = {(0,1),(1,0)} *)
  let general = [| [ (0, 0); (1, 1) ]; [ (0, 1); (1, 0) ] |] in
  let aligned = Partite.align s general in
  Alcotest.(check int) "two permutations" 2 (List.length aligned);
  (* identity permutation: V1 = W1 ∩ U_0 = {0}, V2 = W2 ∩ U_1 = {0} *)
  Alcotest.(check bool) "identity present" true
    (List.exists (fun a -> a = [| [| 0 |]; [| 0 |] |]) aligned);
  (* swap: V1 = W1 ∩ U_1 = {1}, V2 = W2 ∩ U_0 = {1} *)
  Alcotest.(check bool) "swap present" true
    (List.exists (fun a -> a = [| [| 1 |]; [| 1 |] |]) aligned)

let test_general_of_aligned () =
  let s = Partite.space [| 2; 2 |] in
  let edges = [ [| 0; 1 |] ] in
  let oracle = oracle_of_edges edges in
  (* the edge (0 in class 0, 1 in class 1) presented in swapped general
     parts: W1 holds (1, 1), W2 holds (0, 0) *)
  let general = [| [ (1, 1) ]; [ (0, 0) ] |] in
  Alcotest.(check bool) "found via permutation" false
    (Partite.general_of_aligned s oracle general);
  let general_miss = [| [ (0, 1) ]; [ (1, 0) ] |] in
  Alcotest.(check bool) "no edge" true
    (Partite.general_of_aligned s oracle general_miss)

let test_with_counter () =
  let s = Partite.space [| 2 |] in
  let oracle, calls = Partite.with_counter (fun _ -> true) in
  ignore (oracle (Partite.all s));
  ignore (oracle (Partite.all s));
  Alcotest.(check int) "counted" 2 (calls ())

let test_exact_enumeration () =
  let s = Partite.space [| 3; 3 |] in
  let edges = [ [| 0; 0 |]; [| 1; 2 |]; [| 2; 1 |] ] in
  let got, complete = Edge_count.enumerate s (oracle_of_edges edges) () in
  Alcotest.(check bool) "complete" true complete;
  Alcotest.(check (list (array int))) "edges"
    (sort_edges edges)
    (sort_edges got)

let test_exact_count_empty () =
  let s = Partite.space [| 4; 4; 4 |] in
  Alcotest.(check int) "empty" 0 (Edge_count.exact_count s (oracle_of_edges []) ())

let test_enumeration_limit () =
  let s = Partite.space [| 4; 4 |] in
  let edges = List.init 8 (fun i -> [| i mod 4; i / 4 * 2 |]) in
  let edges = List.sort_uniq compare edges in
  let got, complete = Edge_count.enumerate s (oracle_of_edges edges) ~limit:2 () in
  Alcotest.(check bool) "incomplete" false complete;
  Alcotest.(check int) "limited" 2 (List.length got)

let test_within () =
  let s = Partite.space [| 3; 3 |] in
  let edges = [ [| 0; 0 |]; [| 1; 1 |]; [| 2; 2 |] ] in
  let within = [| [| 0; 1 |]; [| 0; 1 |] |] in
  let got, _ = Edge_count.enumerate s (oracle_of_edges edges) ~within () in
  Alcotest.(check int) "two inside the box" 2 (List.length got)

let prop_exact_matches_model =
  QCheck2.Test.make ~count:150 ~name:"oracle enumeration recovers the edge set"
    QCheck2.Gen.(
      pair (int_range 1 3)
        (list_size (int_range 0 10) (list_size (int_range 1 3) (int_range 0 3))))
    (fun (l, raw) ->
      let sizes = Array.make l 4 in
      let s = Partite.space sizes in
      let edges =
        raw
        |> List.filter_map (fun t ->
               if List.length t = l then Some (Array.of_list t) else None)
        |> List.sort_uniq compare
      in
      let got, complete = Edge_count.enumerate s (oracle_of_edges edges) () in
      complete && sort_edges got = sort_edges edges)

let test_estimate_exact_small () =
  let s = Partite.space [| 5; 5 |] in
  let edges = [ [| 0; 0 |]; [| 1; 2 |] ] in
  let rng = Random.State.make [| 1 |] in
  let r = Edge_count.estimate ~rng ~epsilon:0.3 ~delta:0.1 s (oracle_of_edges edges) in
  Alcotest.(check bool) "exact on small" true r.Edge_count.exact;
  Alcotest.(check (float 1e-9)) "value" 2.0 r.Edge_count.value

let test_estimate_overlapping_edges () =
  (* overlapping answer-style edges: all edges share class-0 vertex 0, the
     adversarial case for subsampling variance — the adaptive refinement
     must still land within tolerance *)
  let s = Partite.space [| 30; 500 |] in
  let edges = List.init 400 (fun j -> [| 0; j |]) in
  let rng = Random.State.make [| 13 |] in
  let r = Edge_count.estimate ~rng ~epsilon:0.25 ~delta:0.1 s (oracle_of_edges edges) in
  let err = Float.abs (r.Edge_count.value -. 400.0) /. 400.0 in
  Alcotest.(check bool)
    (Printf.sprintf "within 40%% (got %.1f at level %d)" r.Edge_count.value r.level)
    true (err < 0.4)

let test_estimate_three_classes () =
  let s = Partite.space [| 12; 12; 12 |] in
  let edges = ref [] in
  for i = 0 to 11 do
    for j = 0 to 11 do
      edges := [| i; j; (i + j) mod 12 |] :: !edges
    done
  done;
  let rng = Random.State.make [| 21 |] in
  let r = Edge_count.estimate ~rng ~epsilon:0.25 ~delta:0.1 s (oracle_of_edges !edges) in
  let err = Float.abs (r.Edge_count.value -. 144.0) /. 144.0 in
  Alcotest.(check bool)
    (Printf.sprintf "3-partite within 40%% (got %.1f)" r.Edge_count.value)
    true (err < 0.4)

let test_estimate_accuracy () =
  (* dense product set: 30 × 30 grid of edges = 900, estimator must land
     within 30% with seed fixed *)
  let s = Partite.space [| 40; 40 |] in
  let edges = ref [] in
  for i = 0 to 29 do
    for j = 0 to 29 do
      edges := [| i; j |] :: !edges
    done
  done;
  let rng = Random.State.make [| 7 |] in
  let r = Edge_count.estimate ~rng ~epsilon:0.2 ~delta:0.1 s (oracle_of_edges !edges) in
  let err = Float.abs (r.Edge_count.value -. 900.0) /. 900.0 in
  Alcotest.(check bool)
    (Printf.sprintf "within 30%% (got %.1f)" r.Edge_count.value)
    true (err < 0.3)

let tests =
  [
    Alcotest.test_case "space basics" `Quick test_space_basics;
    Alcotest.test_case "align permutations" `Quick test_align_permutations;
    Alcotest.test_case "general of aligned" `Quick test_general_of_aligned;
    Alcotest.test_case "with counter" `Quick test_with_counter;
    Alcotest.test_case "exact enumeration" `Quick test_exact_enumeration;
    Alcotest.test_case "exact count empty" `Quick test_exact_count_empty;
    Alcotest.test_case "enumeration limit" `Quick test_enumeration_limit;
    Alcotest.test_case "within box" `Quick test_within;
    Alcotest.test_case "estimate exact small" `Quick test_estimate_exact_small;
    Alcotest.test_case "estimate accuracy" `Quick test_estimate_accuracy;
    Alcotest.test_case "estimate overlapping edges" `Quick test_estimate_overlapping_edges;
    Alcotest.test_case "estimate three classes" `Quick test_estimate_three_classes;
    QCheck_alcotest.to_alcotest prop_exact_matches_model;
  ]
