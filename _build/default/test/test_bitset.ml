open Ac_hypergraph

(* Model-based qcheck: bitsets against sorted-int-list sets. *)

let capacity = 100

let gen_elements = QCheck2.Gen.(list_size (int_range 0 20) (int_range 0 (capacity - 1)))

let model_of l = List.sort_uniq Int.compare l

let prop_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"of_list/to_list roundtrip" gen_elements
    (fun l ->
      Bitset.to_list (Bitset.of_list ~capacity l) = model_of l)

let prop_ops =
  QCheck2.Test.make ~count:200 ~name:"union/inter/diff model"
    QCheck2.Gen.(pair gen_elements gen_elements)
    (fun (a, b) ->
      let sa = Bitset.of_list ~capacity a and sb = Bitset.of_list ~capacity b in
      let ma = model_of a and mb = model_of b in
      Bitset.to_list (Bitset.union sa sb) = model_of (ma @ mb)
      && Bitset.to_list (Bitset.inter sa sb) = List.filter (fun x -> List.mem x mb) ma
      && Bitset.to_list (Bitset.diff sa sb)
         = List.filter (fun x -> not (List.mem x mb)) ma
      && Bitset.cardinal sa = List.length ma
      && Bitset.subset sa (Bitset.union sa sb)
      && Bitset.equal (Bitset.inter sa sa) sa)

let prop_add_remove =
  QCheck2.Test.make ~count:200 ~name:"add/remove/mem"
    QCheck2.Gen.(pair gen_elements (int_range 0 (capacity - 1)))
    (fun (l, x) ->
      let s = Bitset.of_list ~capacity l in
      Bitset.mem (Bitset.add s x) x
      && (not (Bitset.mem (Bitset.remove s x) x))
      && Bitset.equal (Bitset.remove (Bitset.add s x) x) (Bitset.remove s x))

let prop_hash_equal =
  QCheck2.Test.make ~count:200 ~name:"equal implies same hash"
    QCheck2.Gen.(pair gen_elements gen_elements)
    (fun (a, b) ->
      let sa = Bitset.of_list ~capacity a and sb = Bitset.of_list ~capacity b in
      (not (Bitset.equal sa sb)) || Bitset.hash sa = Bitset.hash sb)

let test_basics () =
  let s = Bitset.of_list ~capacity:70 [ 0; 5; 63; 64; 69 ] in
  Alcotest.(check (list int)) "to_list" [ 0; 5; 63; 64; 69 ] (Bitset.to_list s);
  Alcotest.(check int) "cardinal" 5 (Bitset.cardinal s);
  Alcotest.(check bool) "mem 64" true (Bitset.mem s 64);
  Alcotest.(check bool) "not mem 1" false (Bitset.mem s 1);
  Alcotest.(check bool) "choose" true (Bitset.choose s = Some 0);
  Alcotest.(check bool) "empty" true (Bitset.is_empty (Bitset.create ~capacity:10));
  Alcotest.(check int) "full" 10 (Bitset.cardinal (Bitset.full ~capacity:10))

let test_capacity_mismatch () =
  let a = Bitset.create ~capacity:5 and b = Bitset.create ~capacity:6 in
  Alcotest.check_raises "union mismatch" (Invalid_argument "Bitset: capacity mismatch")
    (fun () -> ignore (Bitset.union a b))

let tests =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "capacity mismatch" `Quick test_capacity_mismatch;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_ops;
    QCheck_alcotest.to_alcotest prop_add_remove;
    QCheck_alcotest.to_alcotest prop_hash_equal;
  ]
