open Ac_lp

let check_opt ~expected outcome =
  match outcome with
  | Simplex.Optimal { value; point } ->
      Alcotest.(check (float 1e-6)) "objective" expected value;
      Alcotest.(check bool) "point feasible" true (point |> Array.for_all (fun x -> x >= -1e-9))
  | Simplex.Infeasible -> Alcotest.fail "unexpectedly infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpectedly unbounded"

let test_basic_max () =
  (* max x + y st x <= 2, y <= 3 *)
  let outcome =
    Simplex.maximize ~num_vars:2 ~objective:[| 1.0; 1.0 |]
      [
        Simplex.constr [| 1.0; 0.0 |] Simplex.Le 2.0;
        Simplex.constr [| 0.0; 1.0 |] Simplex.Le 3.0;
      ]
  in
  check_opt ~expected:5.0 outcome

let test_classic_lp () =
  (* max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 → 36 at (2, 6) *)
  let outcome =
    Simplex.maximize ~num_vars:2 ~objective:[| 3.0; 5.0 |]
      [
        Simplex.constr [| 1.0; 0.0 |] Simplex.Le 4.0;
        Simplex.constr [| 0.0; 2.0 |] Simplex.Le 12.0;
        Simplex.constr [| 3.0; 2.0 |] Simplex.Le 18.0;
      ]
  in
  check_opt ~expected:36.0 outcome

let test_minimize_with_ge () =
  (* min x + y st x + y >= 2, x >= 0.5 → 2 *)
  let outcome =
    Simplex.minimize ~num_vars:2 ~objective:[| 1.0; 1.0 |]
      [
        Simplex.constr [| 1.0; 1.0 |] Simplex.Ge 2.0;
        Simplex.constr [| 1.0; 0.0 |] Simplex.Ge 0.5;
      ]
  in
  match outcome with
  | Simplex.Optimal { value; _ } -> Alcotest.(check (float 1e-6)) "objective" 2.0 value
  | _ -> Alcotest.fail "expected optimum"

let test_equality () =
  (* max x st x + y = 3, y >= 1 → x = 2 *)
  let outcome =
    Simplex.maximize ~num_vars:2 ~objective:[| 1.0; 0.0 |]
      [
        Simplex.constr [| 1.0; 1.0 |] Simplex.Eq 3.0;
        Simplex.constr [| 0.0; 1.0 |] Simplex.Ge 1.0;
      ]
  in
  check_opt ~expected:2.0 outcome

let test_infeasible () =
  let outcome =
    Simplex.maximize ~num_vars:1 ~objective:[| 1.0 |]
      [
        Simplex.constr [| 1.0 |] Simplex.Le 1.0;
        Simplex.constr [| 1.0 |] Simplex.Ge 2.0;
      ]
  in
  match outcome with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  let outcome =
    Simplex.maximize ~num_vars:2 ~objective:[| 1.0; 0.0 |]
      [ Simplex.constr [| 0.0; 1.0 |] Simplex.Le 1.0 ]
  in
  match outcome with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_negative_rhs () =
  (* max -x st -x <= -2 (i.e. x >= 2) → -2 *)
  let outcome =
    Simplex.maximize ~num_vars:1 ~objective:[| -1.0 |]
      [ Simplex.constr [| -1.0 |] Simplex.Le (-2.0) ]
  in
  check_opt ~expected:(-2.0) outcome

let test_fractional_cover_triangle () =
  (* fcn of the triangle: min γ1+γ2+γ3 st each vertex covered:
     edges ab, bc, ca → optimum 1.5 *)
  let outcome =
    Simplex.minimize ~num_vars:3 ~objective:[| 1.0; 1.0; 1.0 |]
      [
        Simplex.constr [| 1.0; 0.0; 1.0 |] Simplex.Ge 1.0;
        Simplex.constr [| 1.0; 1.0; 0.0 |] Simplex.Ge 1.0;
        Simplex.constr [| 0.0; 1.0; 1.0 |] Simplex.Ge 1.0;
      ]
  in
  match outcome with
  | Simplex.Optimal { value; _ } -> Alcotest.(check (float 1e-6)) "fcn" 1.5 value
  | _ -> Alcotest.fail "expected optimum"

let test_check_function () =
  let constraints =
    [
      Simplex.constr [| 1.0; 1.0 |] Simplex.Le 2.0;
      Simplex.constr [| 1.0; 0.0 |] Simplex.Ge 0.5;
    ]
  in
  Alcotest.(check bool) "feasible point" true (Simplex.check constraints [| 1.0; 1.0 |]);
  Alcotest.(check bool) "violates le" false (Simplex.check constraints [| 2.0; 1.0 |]);
  Alcotest.(check bool) "violates ge" false (Simplex.check constraints [| 0.0; 1.0 |]);
  Alcotest.(check bool) "negative var" false (Simplex.check constraints [| 1.0; -1.0 |])

(* Property: on random LPs with box constraints the solver returns a
   feasible point whose objective beats random feasible points. *)
let prop_dominates_random_points =
  QCheck2.Test.make ~count:60 ~name:"simplex dominates random feasible points"
    QCheck2.Gen.(
      let dim = int_range 1 4 in
      dim >>= fun n ->
      let coeff = float_range (-3.0) 3.0 in
      list_size (int_range 1 5) (pair (array_size (return n) coeff) (float_range 0.5 4.0))
      >>= fun rows ->
      array_size (return n) coeff >>= fun objective ->
      return (n, objective, rows))
    (fun (n, objective, rows) ->
      (* constraints a.x <= b with b > 0, plus x <= 2 boxes: always feasible
         (x = 0) and bounded *)
      let constraints =
        List.map (fun (a, b) -> Simplex.constr a Simplex.Le b) rows
        @ List.init n (fun i ->
              let c = Array.make n 0.0 in
              c.(i) <- 1.0;
              Simplex.constr c Simplex.Le 2.0)
      in
      match Simplex.maximize ~num_vars:n ~objective constraints with
      | Simplex.Optimal { value; point } ->
          Simplex.check ~tolerance:1e-5 constraints point
          &&
          (* compare against a grid of random feasible points *)
          let rand_state = Random.State.make [| Array.length point; n |] in
          let ok = ref true in
          for _ = 1 to 30 do
            let candidate =
              Array.init n (fun _ -> Random.State.float rand_state 2.0)
            in
            if Simplex.check ~tolerance:0.0 constraints candidate then begin
              let v =
                Array.to_list (Array.mapi (fun i c -> c *. candidate.(i)) objective)
                |> List.fold_left ( +. ) 0.0
              in
              if v > value +. 1e-4 then ok := false
            end
          done;
          !ok
      | Simplex.Infeasible -> false (* x = 0 is always feasible *)
      | Simplex.Unbounded -> false (* boxes bound the region *))

let tests =
  [
    Alcotest.test_case "basic max" `Quick test_basic_max;
    Alcotest.test_case "classic lp" `Quick test_classic_lp;
    Alcotest.test_case "minimize with ge" `Quick test_minimize_with_ge;
    Alcotest.test_case "equality" `Quick test_equality;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
    Alcotest.test_case "triangle fractional cover" `Quick test_fractional_cover_triangle;
    Alcotest.test_case "check function" `Quick test_check_function;
    QCheck_alcotest.to_alcotest prop_dominates_random_points;
  ]
