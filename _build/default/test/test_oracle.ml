module Ecq = Ac_query.Ecq
module Structure = Ac_relational.Structure
module Colour_oracle = Approxcount.Colour_oracle
module Exact = Approxcount.Exact

(* Ground truth: does the box contain an answer? *)
let box_has_answer q db parts =
  Exact.answers q db
  |> List.exists (fun tau ->
         Array.for_all Fun.id
           (Array.mapi (fun i v -> Array.exists (( = ) v) parts.(i)) tau))

let engines =
  [
    ("tree_dp", Colour_oracle.Tree_dp);
    ("generic", Colour_oracle.Generic);
    ("direct", Colour_oracle.Direct);
  ]

(* Oracle correctness on random instances and random boxes. One-sided
   error: with enough colouring rounds both directions must hold with
   overwhelming probability (≥ 1/4 success per round for |Δ| ≤ 1 leaves
   (3/4)^rounds failure). *)
let prop_oracle_matches ~allow_neg ~allow_diseq engine_name engine =
  QCheck2.Test.make ~count:80
    ~name:
      (Printf.sprintf "oracle(%s) matches ground truth (neg=%b diseq=%b)"
         engine_name allow_neg allow_diseq)
    QCheck2.Gen.(pair (Gen.ecq_with_db ~allow_neg ~allow_diseq) (int_range 0 10000))
    (fun ((q, db), seed) ->
      let l = Ecq.num_free q in
      if l = 0 || Structure.universe_size db = 0 then true
      else begin
        let rng = Random.State.make [| seed |] in
        let oracle = Colour_oracle.create ~rng ~rounds:48 ~engine q db in
        let u = Structure.universe_size db in
        let ok = ref true in
        for trial = 0 to 4 do
          let box_rng = Random.State.make [| seed + trial |] in
          let parts =
            Array.init l (fun _ ->
                Array.of_list
                  (List.filter
                     (fun _ -> Random.State.bool box_rng)
                     (List.init u Fun.id)))
          in
          let expected = box_has_answer q db parts in
          let got = Colour_oracle.has_answer_in_box oracle parts in
          if got <> expected then ok := false
        done;
        !ok
      end)

let test_counts_tracked () =
  let q = Ac_workload.Query_families.friends () in
  let db =
    Structure.of_facts ~universe_size:3
      [ ("F", [| 0; 1 |]); ("F", [| 0; 2 |]) ]
  in
  let oracle =
    Colour_oracle.create
      ~rng:(Random.State.make [| 1 |])
      ~rounds:64 ~engine:Colour_oracle.Tree_dp q db
  in
  Alcotest.(check int) "no calls yet" 0 (Colour_oracle.oracle_calls oracle);
  let parts = [| [| 0; 1; 2 |] |] in
  Alcotest.(check bool) "answer found" true (Colour_oracle.has_answer_in_box oracle parts);
  Alcotest.(check int) "one oracle call" 1 (Colour_oracle.oracle_calls oracle);
  Alcotest.(check bool) "hom calls made" true (Colour_oracle.hom_calls oracle > 0)

let test_empty_part () =
  let q = Ac_workload.Query_families.friends () in
  let db = Structure.of_facts ~universe_size:3 [ ("F", [| 0; 1 |]); ("F", [| 0; 2 |]) ] in
  let oracle =
    Colour_oracle.create ~rng:(Random.State.make [| 1 |]) ~rounds:8
      ~engine:Colour_oracle.Tree_dp q db
  in
  Alcotest.(check bool) "empty part has no edge" false
    (Colour_oracle.has_answer_in_box oracle [| [||] |])

let test_propagation_pinned_diseq () =
  (* Hamiltonian-style query: all disequalities among free variables; at
     singleton boxes the propagation must resolve all of them without
     colour rounds (rounds=1 suffices for a correct positive answer). *)
  let q = Ac_workload.Query_families.hamiltonian 3 in
  let g = Ac_workload.Graph.path 3 in
  let db = Ac_workload.Graph.to_structure g in
  let oracle =
    Colour_oracle.create ~rng:(Random.State.make [| 2 |]) ~rounds:1
      ~engine:Colour_oracle.Tree_dp q db
  in
  (* the path 0-1-2 is a Hamiltonian path *)
  Alcotest.(check bool) "path found" true
    (Colour_oracle.has_answer_in_box oracle [| [| 0 |]; [| 1 |]; [| 2 |] |]);
  Alcotest.(check bool) "non-path rejected" false
    (Colour_oracle.has_answer_in_box oracle [| [| 0 |]; [| 2 |]; [| 1 |] |]);
  Alcotest.(check bool) "repeated vertex rejected" false
    (Colour_oracle.has_answer_in_box oracle [| [| 0 |]; [| 1 |]; [| 0 |] |])

let test_space () =
  let q = Ac_workload.Query_families.star_distinct 2 in
  let db = Structure.of_facts ~universe_size:5 [ ("E", [| 0; 1 |]) ] in
  let oracle =
    Colour_oracle.create ~rng:(Random.State.make [| 3 |]) ~engine:Colour_oracle.Generic
      q db
  in
  let space = Colour_oracle.space oracle in
  Alcotest.(check int) "two classes" 2 (Ac_dlm.Partite.num_classes space);
  Alcotest.(check int) "class size" 10 (Ac_dlm.Partite.num_vertices space)

let test_rounds_for () =
  let r = Colour_oracle.rounds_for ~delta:0.1 ~ell:2 ~num_diseq:2 ~expected_oracle_calls:100 in
  Alcotest.(check bool) "scales with 4^delta" true (r >= 16);
  let r0 = Colour_oracle.rounds_for ~delta:0.1 ~ell:2 ~num_diseq:0 ~expected_oracle_calls:100 in
  Alcotest.(check bool) "smaller without diseqs" true (r0 < r)

let tests =
  [
    Alcotest.test_case "call counters" `Quick test_counts_tracked;
    Alcotest.test_case "empty part" `Quick test_empty_part;
    Alcotest.test_case "pinned diseq propagation" `Quick test_propagation_pinned_diseq;
    Alcotest.test_case "space" `Quick test_space;
    Alcotest.test_case "rounds_for" `Quick test_rounds_for;
  ]
  @ List.concat_map
      (fun (name, engine) ->
        [
          QCheck_alcotest.to_alcotest
            (prop_oracle_matches ~allow_neg:false ~allow_diseq:false name engine);
          QCheck_alcotest.to_alcotest
            (prop_oracle_matches ~allow_neg:true ~allow_diseq:true name engine);
        ])
      engines
