test/test_simplex.ml: Ac_lp Alcotest Array List QCheck2 QCheck_alcotest Random Simplex
