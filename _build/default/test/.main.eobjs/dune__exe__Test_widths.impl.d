test/test_widths.ml: Ac_hypergraph Alcotest Array Bitset Float Fun Hypergraph List QCheck2 QCheck_alcotest Tree_decomposition Widths
