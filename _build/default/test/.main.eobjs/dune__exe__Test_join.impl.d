test/test_join.ml: Ac_join Ac_relational Alcotest Array Generic_join List QCheck2 QCheck_alcotest Relation
