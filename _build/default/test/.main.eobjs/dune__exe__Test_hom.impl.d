test/test_hom.ml: Ac_hom Ac_hypergraph Ac_relational Alcotest Array Fun Hom List QCheck2 QCheck_alcotest Structure
