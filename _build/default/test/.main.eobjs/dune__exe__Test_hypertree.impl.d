test/test_hypertree.ml: Ac_hypergraph Alcotest Array Fun Hypergraph Hypertree List QCheck2 QCheck_alcotest Widths
