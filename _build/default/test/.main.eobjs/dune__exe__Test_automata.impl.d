test/test_automata.ml: Ac_automata Acjr Alcotest Exact_ta Float List Ltree QCheck2 QCheck_alcotest Tree_automaton
