test/test_sampling.ml: Ac_query Ac_relational Ac_workload Alcotest Approxcount Array Float Gen Printf QCheck2 QCheck_alcotest Random
