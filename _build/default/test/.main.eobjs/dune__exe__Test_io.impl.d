test/test_io.ml: Ac_relational Alcotest Filename Gen QCheck2 QCheck_alcotest Structure Structure_io Sys
