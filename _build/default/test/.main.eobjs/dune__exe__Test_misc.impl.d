test/test_misc.ml: Ac_automata Ac_dlm Ac_hypergraph Ac_query Ac_relational Ac_workload Alcotest Approxcount Array Float Gen List QCheck2 QCheck_alcotest Random
