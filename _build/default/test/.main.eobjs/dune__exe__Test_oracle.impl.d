test/test_oracle.ml: Ac_dlm Ac_query Ac_relational Ac_workload Alcotest Approxcount Array Fun Gen List Printf QCheck2 QCheck_alcotest Random
