test/test_dlm.ml: Ac_dlm Alcotest Array Edge_count Float Fun List Partite Printf QCheck2 QCheck_alcotest Random
