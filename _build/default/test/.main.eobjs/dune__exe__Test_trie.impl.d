test/test_trie.ml: Ac_join Ac_relational Alcotest Array List Relation Trie
