test/test_rat.ml: Ac_hypergraph Ac_lp Alcotest Array Float List QCheck2 QCheck_alcotest Rat Simplex_exact
