test/test_planner.ml: Ac_dlm Ac_hom Ac_query Ac_relational Ac_workload Alcotest Approxcount Array Float Fun Hashtbl List Printf QCheck2 QCheck_alcotest Random
