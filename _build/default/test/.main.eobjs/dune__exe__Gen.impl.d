test/gen.ml: Ac_query Ac_relational Array Fun List QCheck2
