test/test_query.ml: Ac_hypergraph Ac_query Ac_relational Alcotest Ecq List Structure
