test/test_regression.ml: Ac_query Ac_relational Ac_workload Alcotest Approxcount Float List Printf Random String
