test/test_relational.ml: Ac_relational Alcotest List QCheck2 QCheck_alcotest Relation Structure Tuple
