test/test_fptras.ml: Ac_query Ac_relational Ac_workload Alcotest Approxcount Float Gen List Printf QCheck2 QCheck_alcotest Random
