test/test_applications.ml: Ac_hypergraph Ac_query Ac_workload Alcotest Approxcount Fun List QCheck2 QCheck_alcotest Random
