test/test_assoc.ml: Ac_hom Ac_query Ac_relational Ac_workload Alcotest Approxcount Array Ecq Fun Gen List QCheck2 QCheck_alcotest Random Relation Structure
