test/main.mli:
