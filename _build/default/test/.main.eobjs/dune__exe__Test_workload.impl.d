test/test_workload.ml: Ac_hypergraph Ac_query Ac_relational Ac_workload Alcotest Approxcount List QCheck2 QCheck_alcotest Random
