test/test_hypergraph.ml: Ac_hypergraph Alcotest Array Bitset Hypergraph List QCheck2 QCheck_alcotest
