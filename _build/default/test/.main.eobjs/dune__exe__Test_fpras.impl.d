test/test_fpras.ml: Ac_automata Ac_hypergraph Ac_query Ac_relational Ac_workload Alcotest Approxcount Array Float Fun Gen Hashtbl List QCheck2 QCheck_alcotest Random
