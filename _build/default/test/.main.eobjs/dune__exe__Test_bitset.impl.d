test/test_bitset.ml: Ac_hypergraph Alcotest Bitset Int List QCheck2 QCheck_alcotest
