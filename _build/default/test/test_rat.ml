open Ac_lp

let rat = Alcotest.testable Rat.pp Rat.equal

let test_basics () =
  Alcotest.check rat "reduce" (Rat.make 1 2) (Rat.make 2 4);
  Alcotest.check rat "negative den" (Rat.make (-1) 2) (Rat.make 1 (-2));
  Alcotest.check rat "add" (Rat.make 5 6) (Rat.add (Rat.make 1 2) (Rat.make 1 3));
  Alcotest.check rat "sub" (Rat.make 1 6) (Rat.sub (Rat.make 1 2) (Rat.make 1 3));
  Alcotest.check rat "mul" (Rat.make 1 3) (Rat.mul (Rat.make 1 2) (Rat.make 2 3));
  Alcotest.check rat "div" (Rat.make 3 4) (Rat.div (Rat.make 1 2) (Rat.make 2 3));
  Alcotest.(check int) "sign" (-1) (Rat.sign (Rat.make (-3) 7));
  Alcotest.(check string) "to_string" "3/2" (Rat.to_string (Rat.make 3 2));
  Alcotest.(check string) "int to_string" "5" (Rat.to_string (Rat.of_int 5));
  Alcotest.(check (float 1e-12)) "to_float" 1.5 (Rat.to_float (Rat.make 3 2));
  (match Rat.make 1 0 with
  | exception Division_by_zero -> ()
  | _ -> Alcotest.fail "zero denominator");
  match Rat.div Rat.one Rat.zero with
  | exception Division_by_zero -> ()
  | _ -> Alcotest.fail "division by zero"

let gen_rat =
  QCheck2.Gen.(
    pair (int_range (-50) 50) (int_range 1 50) >>= fun (n, d) ->
    return (Rat.make n d))

let prop_field_laws =
  QCheck2.Test.make ~count:300 ~name:"rational field laws"
    QCheck2.Gen.(triple gen_rat gen_rat gen_rat)
    (fun (a, b, c) ->
      Rat.equal (Rat.add a b) (Rat.add b a)
      && Rat.equal (Rat.add (Rat.add a b) c) (Rat.add a (Rat.add b c))
      && Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c))
      && Rat.equal (Rat.sub a a) Rat.zero
      && (Rat.sign b = 0 || Rat.equal (Rat.mul (Rat.div a b) b) a))

let prop_compare_consistent_with_float =
  QCheck2.Test.make ~count:300 ~name:"compare matches float order"
    QCheck2.Gen.(pair gen_rat gen_rat)
    (fun (a, b) ->
      let c = Rat.compare a b in
      let f = Float.compare (Rat.to_float a) (Rat.to_float b) in
      (* float conversion is exact for these small rationals' order *)
      (c < 0) = (f < 0) && (c > 0) = (f > 0))

(* exact simplex vs the float solver on small random LPs *)
let test_exact_known_lps () =
  let q n d = Rat.make n d in
  (* max 3x + 5y st x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → exactly 36 *)
  (match
     Simplex_exact.maximize ~num_vars:2
       ~objective:[| Rat.of_int 3; Rat.of_int 5 |]
       [
         Simplex_exact.constr [| Rat.one; Rat.zero |] Simplex_exact.Le (Rat.of_int 4);
         Simplex_exact.constr [| Rat.zero; Rat.of_int 2 |] Simplex_exact.Le (Rat.of_int 12);
         Simplex_exact.constr [| Rat.of_int 3; Rat.of_int 2 |] Simplex_exact.Le (Rat.of_int 18);
       ]
   with
  | Simplex_exact.Optimal { value; point } ->
      Alcotest.check rat "value exactly 36" (Rat.of_int 36) value;
      Alcotest.check rat "x = 2" (Rat.of_int 2) point.(0);
      Alcotest.check rat "y = 6" (Rat.of_int 6) point.(1)
  | _ -> Alcotest.fail "expected optimum");
  (* triangle cover: exactly 3/2 with weights 1/2 *)
  match
    Simplex_exact.minimize ~num_vars:3
      ~objective:[| Rat.one; Rat.one; Rat.one |]
      [
        Simplex_exact.constr [| Rat.one; Rat.zero; Rat.one |] Simplex_exact.Ge Rat.one;
        Simplex_exact.constr [| Rat.one; Rat.one; Rat.zero |] Simplex_exact.Ge Rat.one;
        Simplex_exact.constr [| Rat.zero; Rat.one; Rat.one |] Simplex_exact.Ge Rat.one;
      ]
  with
  | Simplex_exact.Optimal { value; point } ->
      Alcotest.check rat "exactly 3/2" (q 3 2) value;
      Alcotest.(check bool) "cover certificate" true
        (Simplex_exact.check
           [
             Simplex_exact.constr [| Rat.one; Rat.zero; Rat.one |] Simplex_exact.Ge Rat.one;
             Simplex_exact.constr [| Rat.one; Rat.one; Rat.zero |] Simplex_exact.Ge Rat.one;
             Simplex_exact.constr [| Rat.zero; Rat.one; Rat.one |] Simplex_exact.Ge Rat.one;
           ]
           point)
  | _ -> Alcotest.fail "expected optimum"

let test_exact_infeasible_unbounded () =
  (match
     Simplex_exact.maximize ~num_vars:1 ~objective:[| Rat.one |]
       [
         Simplex_exact.constr [| Rat.one |] Simplex_exact.Le Rat.one;
         Simplex_exact.constr [| Rat.one |] Simplex_exact.Ge (Rat.of_int 2);
       ]
   with
  | Simplex_exact.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible");
  match
    Simplex_exact.maximize ~num_vars:2 ~objective:[| Rat.one; Rat.zero |]
      [ Simplex_exact.constr [| Rat.zero; Rat.one |] Simplex_exact.Le Rat.one ]
  with
  | Simplex_exact.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

(* exact and float solvers agree on random bounded LPs *)
let prop_exact_matches_float =
  QCheck2.Test.make ~count:60 ~name:"exact simplex = float simplex"
    QCheck2.Gen.(
      let dim = 3 in
      pair
        (array_size (return dim) (int_range (-3) 3))
        (list_size (int_range 1 4)
           (pair (array_size (return dim) (int_range (-2) 3)) (int_range 1 5))))
    (fun (objective, rows) ->
      let dim = 3 in
      (* boxes keep it bounded and feasible at x = 0 *)
      let float_constraints =
        List.map
          (fun (a, b) ->
            Ac_lp.Simplex.constr (Array.map float_of_int a) Ac_lp.Simplex.Le
              (float_of_int b))
          rows
        @ List.init dim (fun i ->
              let c = Array.make dim 0.0 in
              c.(i) <- 1.0;
              Ac_lp.Simplex.constr c Ac_lp.Simplex.Le 3.0)
      in
      let exact_constraints =
        List.map
          (fun (a, b) ->
            Simplex_exact.constr (Array.map Rat.of_int a) Simplex_exact.Le
              (Rat.of_int b))
          rows
        @ List.init dim (fun i ->
              let c = Array.make dim Rat.zero in
              c.(i) <- Rat.one;
              Simplex_exact.constr c Simplex_exact.Le (Rat.of_int 3))
      in
      let f =
        Ac_lp.Simplex.maximize ~num_vars:dim
          ~objective:(Array.map float_of_int objective)
          float_constraints
      in
      let e =
        Simplex_exact.maximize ~num_vars:dim
          ~objective:(Array.map Rat.of_int objective)
          exact_constraints
      in
      match (f, e) with
      | Ac_lp.Simplex.Optimal { value = fv; _ }, Simplex_exact.Optimal { value = ev; _ }
        ->
          Float.abs (fv -. Rat.to_float ev) < 1e-6
      | Ac_lp.Simplex.Infeasible, Simplex_exact.Infeasible -> true
      | Ac_lp.Simplex.Unbounded, Simplex_exact.Unbounded -> true
      | _ -> false)

let test_fcn_rational_triangle () =
  let h = Ac_hypergraph.Hypergraph.cycle 3 in
  match
    Ac_hypergraph.Widths.fcn_rational h
      (Ac_hypergraph.Bitset.full ~capacity:3)
  with
  | Some (value, weights) ->
      Alcotest.check rat "exactly 3/2" (Rat.make 3 2) value;
      Array.iter
        (fun w -> Alcotest.check rat "weight exactly 1/2" (Rat.make 1 2) w)
        weights
  | None -> Alcotest.fail "expected a cover"

let tests =
  [
    Alcotest.test_case "rational basics" `Quick test_basics;
    Alcotest.test_case "exact known LPs" `Quick test_exact_known_lps;
    Alcotest.test_case "exact infeasible/unbounded" `Quick test_exact_infeasible_unbounded;
    Alcotest.test_case "fcn_rational triangle" `Quick test_fcn_rational_triangle;
    QCheck_alcotest.to_alcotest prop_field_laws;
    QCheck_alcotest.to_alcotest prop_compare_consistent_with_float;
    QCheck_alcotest.to_alcotest prop_exact_matches_float;
  ]
