(** The structures associated with a query/database pair (§2.2, §3).

    - [source φ] is [A(φ)] (Definition 18): universe [vars(φ)], a tuple
      per (possibly negated) predicate; negated predicates use the fresh
      symbol {!negated_symbol}.
    - [target φ D] is [B(φ, D)] (Definition 20): [R^D] for positive
      symbols and the explicit complement [U^ar \ R^D] for negated ones
      (the [ν·|U|^a] cost of Observation 21 is paid here, as the paper's
      running-time bound assumes).
    - [hat_source]/[hat_target] are the literal [Â(φ)] (Definition 26)
      and [B̂(φ, D, V₁..V_ℓ, f)] (Definition 28) — used by the tests that
      verify Lemma 30; the production oracle implements the same
      constraints as variable domains instead (see {!Colour_oracle}). *)

val negated_symbol : string -> string

(** [A(φ)]. Solutions of [(φ, D)] without disequalities = homomorphisms
    [A(φ) → B(φ, D)] (equation (2)). *)
val source : Ac_query.Ecq.t -> Ac_relational.Structure.t

(** [B(φ, D)]. Raises [Invalid_argument] when [sig(φ) ⊄ sig(D)]. *)
val target : Ac_query.Ecq.t -> Ac_relational.Structure.t -> Ac_relational.Structure.t

(** The [Hom] instance [A(φ) → B(φ, D)]. *)
val hom_instance : Ac_query.Ecq.t -> Ac_relational.Structure.t -> Ac_hom.Hom.instance

(** A colouring collection [f = {f_η}]: for each disequality pair (sorted
    [i < j]) a Boolean per universe element — [true] is the paper's colour
    [r]. *)
type colouring = ((int * int) * bool array) list

val random_colouring :
  rng:Random.State.t -> Ac_query.Ecq.t -> universe_size:int -> colouring

(** [Â(φ)] (Definition 26): [A(φ)] plus unary [P_i = {x_i}] and, per
    disequality [η = {x_i, x_j}], unary [Rη = {x_i}], [Bη = {x_j}]. *)
val hat_source : Ac_query.Ecq.t -> Ac_relational.Structure.t

(** [B̂(φ, D, V₁..V_ℓ, f)] (Definition 28). [parts.(i)] lists the
    permitted values of free variable [i] (the aligned part [V_i]);
    universe elements are the pairs [(w, i)] encoded as [i·|U(D)| + w].
    Exponential in the arity — used by tests of Lemma 30 only. *)
val hat_target :
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  parts:int array array ->
  colouring ->
  Ac_relational.Structure.t
