module Graph = Ac_workload.Graph
module Query_families = Ac_workload.Query_families

let query = Query_families.hamiltonian

let database_of g = Graph.to_structure ~symbol:"E" g

let exact_paths = Graph.count_hamiltonian_paths

let exact_via_query g =
  Exact.by_join_projection (query (Graph.num_vertices g)) (database_of g)

let approx_via_query ?rng ?engine ?rounds ~epsilon ~delta g =
  Fptras.approx_count ?rng ?engine ?rounds ~epsilon ~delta
    (query (Graph.num_vertices g))
    (database_of g)
