module Ecq = Ac_query.Ecq
module Hypergraph = Ac_hypergraph.Hypergraph
module Tree_decomposition = Ac_hypergraph.Tree_decomposition
module Widths = Ac_hypergraph.Widths

type algorithm =
  | Use_fpras
  | Use_fptras of Colour_oracle.engine

type query_class = Cq | Dcq | Ecq_full

type decision = {
  algorithm : algorithm;
  query_class : query_class;
  treewidth : int;
  fhw : float;
  exact_widths : bool;
  reason : string;
}

let plan q =
  let h = Ecq.hypergraph q in
  let exact_widths = Hypergraph.num_vertices h <= 14 in
  let treewidth =
    if exact_widths then fst (Tree_decomposition.treewidth_exact h)
    else Tree_decomposition.width (Tree_decomposition.decompose h)
  in
  let fhw =
    if exact_widths then fst (Widths.fhw_exact h) else Widths.fhw_upper h
  in
  let arity = Hypergraph.arity h in
  if Ecq.is_cq q then
    {
      algorithm = Use_fpras;
      query_class = Cq;
      treewidth;
      fhw;
      exact_widths;
      reason =
        Printf.sprintf
          "CQ with fhw %.2f: Theorem 16 FPRAS (tree-automaton pipeline)" fhw;
    }
  else if Ecq.is_dcq q then
    if arity <= 2 && treewidth <= 3 then
      {
        algorithm = Use_fptras Colour_oracle.Tree_dp;
        query_class = Dcq;
        treewidth;
        fhw;
        exact_widths;
        reason =
          Printf.sprintf
            "DCQ (no FPRAS, Observation 10); arity %d, tw %d: Theorem 5 FPTRAS with the tree-DP engine"
            arity treewidth;
      }
    else
      {
        algorithm = Use_fptras Colour_oracle.Generic;
        query_class = Dcq;
        treewidth;
        fhw;
        exact_widths;
        reason =
          Printf.sprintf
            "DCQ (no FPRAS, Observation 10) of arity %d: Theorem 13 FPTRAS with the generic-join engine (bounded adaptive width)"
            arity;
      }
  else
    {
      algorithm = Use_fptras Colour_oracle.Tree_dp;
      query_class = Ecq_full;
      treewidth;
      fhw;
      exact_widths;
      reason =
        Printf.sprintf
          "ECQ with negations (no FPRAS, Observation 10): Theorem 5 FPTRAS, tw %d, arity %d"
          treewidth arity;
    }

let count ?rng ~epsilon ~delta q db =
  let rng = match rng with Some r -> r | None -> Random.State.make_self_init () in
  let d = plan q in
  let value =
    match d.algorithm with
    | Use_fpras ->
        let config =
          {
            (Ac_automata.Acjr.default_config ()) with
            Ac_automata.Acjr.rng;
          }
        in
        Fpras.approx_count ~config q db
    | Use_fptras engine ->
        (Fptras.approx_count ~rng ~engine ~epsilon ~delta q db).Fptras.estimate
  in
  (value, d)
