lib/core/exact.ml: Ac_hom Ac_query Ac_relational Array Assoc List
