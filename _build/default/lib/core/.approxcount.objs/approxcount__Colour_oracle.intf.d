lib/core/colour_oracle.mli: Ac_dlm Ac_query Ac_relational Random
