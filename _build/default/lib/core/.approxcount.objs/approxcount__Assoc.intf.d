lib/core/assoc.mli: Ac_hom Ac_query Ac_relational Random
