lib/core/lihom.mli: Ac_query Ac_relational Ac_workload Colour_oracle Fptras Random
