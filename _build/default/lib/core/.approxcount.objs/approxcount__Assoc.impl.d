lib/core/assoc.ml: Ac_hom Ac_query Ac_relational Array Float Fun Hashtbl List Printf Random
