lib/core/ucq.mli: Ac_query Ac_relational Colour_oracle Format Random
