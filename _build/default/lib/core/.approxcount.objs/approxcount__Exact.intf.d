lib/core/exact.mli: Ac_query Ac_relational
