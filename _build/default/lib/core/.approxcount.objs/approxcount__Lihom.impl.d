lib/core/lihom.ml: Ac_relational Ac_workload Exact Fptras
