lib/core/colour_oracle.ml: Ac_dlm Ac_hom Ac_join Ac_query Ac_relational Array Assoc Float Fun Hashtbl List Random
