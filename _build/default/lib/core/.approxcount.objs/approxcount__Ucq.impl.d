lib/core/ucq.ml: Ac_query Exact Format List Sampling String
