lib/core/sampling.mli: Ac_query Ac_relational Colour_oracle Random
