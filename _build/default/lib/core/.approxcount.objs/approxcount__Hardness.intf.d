lib/core/hardness.mli: Ac_query Ac_relational Ac_workload Colour_oracle Fptras Random
