lib/core/hardness.ml: Ac_workload Exact Fptras
