lib/core/planner.mli: Ac_query Ac_relational Colour_oracle Random
