lib/core/fptras.ml: Ac_dlm Ac_query Colour_oracle Random
