lib/core/fpras.mli: Ac_automata Ac_hypergraph Ac_query Ac_relational
