lib/core/fpras.ml: Ac_automata Ac_hypergraph Ac_join Ac_query Ac_relational Array Hashtbl List Option
