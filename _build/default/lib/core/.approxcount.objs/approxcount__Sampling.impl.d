lib/core/sampling.ml: Ac_dlm Ac_query Ac_relational Array Colour_oracle Exact Fptras Fun List Random
