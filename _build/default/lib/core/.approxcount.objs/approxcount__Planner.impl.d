lib/core/planner.ml: Ac_automata Ac_hypergraph Ac_query Colour_oracle Fpras Fptras Printf Random
