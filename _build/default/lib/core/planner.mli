(** Automatic algorithm selection following Figure 1.

    Given a query, {!plan} reads off the paper's classification — CQs get
    the Theorem 16 FPRAS; DCQs and ECQs get an FPTRAS (no FPRAS exists for
    them unless NP = RP, Observation 10), with the engine chosen by the
    regime: tree-decomposition DP in the bounded-arity/treewidth regime of
    Theorem 5, generic join in the unbounded-arity regime of Theorem 13.
    {!count} plans and runs. *)

type algorithm =
  | Use_fpras                              (** Theorem 16 *)
  | Use_fptras of Colour_oracle.engine     (** Theorems 5 / 13 *)

type query_class = Cq | Dcq | Ecq_full

type decision = {
  algorithm : algorithm;
  query_class : query_class;
  treewidth : int;     (** exact when [exact_widths] *)
  fhw : float;         (** exact when [exact_widths] *)
  exact_widths : bool; (** widths are exact for ≤ 14 variables *)
  reason : string;     (** human-readable justification *)
}

val plan : Ac_query.Ecq.t -> decision

(** Plan, run the chosen scheme, return the estimate and the decision. *)
val count :
  ?rng:Random.State.t ->
  epsilon:float ->
  delta:float ->
  Ac_query.Ecq.t ->
  Ac_relational.Structure.t ->
  float * decision
