(** Random database generators for the experiments. *)

(** [random_structure ~rng ~universe_size relations] builds a database
    with, for each [(name, arity, count)], [count] distinct uniform random
    tuples (or all tuples if [count] exceeds [universe_size^arity]). *)
val random_structure :
  rng:Random.State.t ->
  universe_size:int ->
  (string * int * int) list ->
  Ac_relational.Structure.t

(** A random "friends" database: a symmetric binary relation [F] over
    [n] people with expected degree [avg_degree]. *)
val friends_database :
  rng:Random.State.t -> n:int -> avg_degree:float -> Ac_relational.Structure.t

(** Database whose single relation [R] of the given arity contains
    [count] random tuples; used by the high-arity DCQ experiments. *)
val high_arity_database :
  rng:Random.State.t ->
  universe_size:int ->
  arity:int ->
  count:int ->
  Ac_relational.Structure.t
