module Structure = Ac_relational.Structure
module Hypergraph = Ac_hypergraph.Hypergraph

type t = {
  num_vertices : int;
  edges : (int * int) list;
  adjacency : int list array;
}

let create ~num_vertices raw_edges =
  if num_vertices < 0 then invalid_arg "Graph.create";
  let seen = Hashtbl.create 64 in
  let edges = ref [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= num_vertices || v < 0 || v >= num_vertices then
        invalid_arg "Graph.create: vertex out of range";
      if u <> v then begin
        let e = (min u v, max u v) in
        if not (Hashtbl.mem seen e) then begin
          Hashtbl.replace seen e ();
          edges := e :: !edges
        end
      end)
    raw_edges;
  let edges = List.rev !edges in
  let adjacency = Array.make num_vertices [] in
  List.iter
    (fun (u, v) ->
      adjacency.(u) <- v :: adjacency.(u);
      adjacency.(v) <- u :: adjacency.(v))
    edges;
  { num_vertices; edges; adjacency }

let num_vertices g = g.num_vertices
let edges g = g.edges
let num_edges g = List.length g.edges
let neighbours g v = g.adjacency.(v)
let degree g v = List.length g.adjacency.(v)
let has_edge g u v = u <> v && List.mem v g.adjacency.(u)

let common_neighbour_pairs g =
  let seen = Hashtbl.create 64 in
  for c = 0 to g.num_vertices - 1 do
    let ns = g.adjacency.(c) in
    List.iter
      (fun u ->
        List.iter
          (fun v -> if u < v then Hashtbl.replace seen (u, v) ())
          ns)
      ns
  done;
  Hashtbl.fold (fun p () acc -> p :: acc) seen [] |> List.sort compare

let to_structure ?(symbol = "E") g =
  let s = Structure.create ~universe_size:g.num_vertices in
  Structure.declare s symbol ~arity:2;
  List.iter
    (fun (u, v) ->
      Structure.add_fact s symbol [| u; v |];
      Structure.add_fact s symbol [| v; u |])
    g.edges;
  s

let to_hypergraph g =
  let covered = Array.make g.num_vertices false in
  List.iter
    (fun (u, v) ->
      covered.(u) <- true;
      covered.(v) <- true)
    g.edges;
  let singles =
    List.init g.num_vertices Fun.id
    |> List.filter_map (fun v -> if covered.(v) then None else Some [ v ])
  in
  Hypergraph.create ~num_vertices:g.num_vertices
    (List.map (fun (u, v) -> [ u; v ]) g.edges @ singles)

let path n =
  create ~num_vertices:n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Graph.cycle";
  create ~num_vertices:n (List.init n (fun i -> (i, (i + 1) mod n)))

let clique n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  create ~num_vertices:n !edges

let star n = create ~num_vertices:(n + 1) (List.init n (fun i -> (0, i + 1)))

let grid rows cols =
  let idx i j = (i * cols) + j in
  let edges = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if j + 1 < cols then edges := (idx i j, idx i (j + 1)) :: !edges;
      if i + 1 < rows then edges := (idx i j, idx (i + 1) j) :: !edges
    done
  done;
  create ~num_vertices:(rows * cols) !edges

let binary_tree ~depth =
  if depth < 0 then invalid_arg "Graph.binary_tree";
  let n = (1 lsl (depth + 1)) - 1 in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := ((v - 1) / 2, v) :: !edges
  done;
  create ~num_vertices:n !edges

let random_gnp ~rng n p =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then edges := (i, j) :: !edges
    done
  done;
  create ~num_vertices:n !edges

let random_gnm ~rng n m =
  let all = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      all := (i, j) :: !all
    done
  done;
  let arr = Array.of_list !all in
  let total = Array.length arr in
  if m > total then invalid_arg "Graph.random_gnm: too many edges";
  (* partial Fisher–Yates *)
  for i = 0 to m - 1 do
    let j = i + Random.State.int rng (total - i) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  create ~num_vertices:n (Array.to_list (Array.sub arr 0 m))

let count_hamiltonian_paths g =
  let n = g.num_vertices in
  if n > 20 then invalid_arg "Graph.count_hamiltonian_paths: too large";
  if n = 0 then 0
  else if n = 1 then 1
  else begin
    (* dp.(mask).(v) = number of ordered paths visiting exactly [mask],
       ending at [v] *)
    let size = 1 lsl n in
    let dp = Array.make_matrix size n 0 in
    for v = 0 to n - 1 do
      dp.(1 lsl v).(v) <- 1
    done;
    for mask = 1 to size - 1 do
      for v = 0 to n - 1 do
        let c = dp.(mask).(v) in
        if c > 0 && mask land (1 lsl v) <> 0 then
          List.iter
            (fun u ->
              if mask land (1 lsl u) = 0 then
                dp.(mask lor (1 lsl u)).(u) <- dp.(mask lor (1 lsl u)).(u) + c)
            g.adjacency.(v)
      done
    done;
    Array.fold_left ( + ) 0 dp.(size - 1)
  end

let count_locally_injective_brute g g' =
  let n = num_vertices g and m = num_vertices g' in
  let h = Array.make (max n 1) 0 in
  let count = ref 0 in
  let locally_injective () =
    let ok = ref true in
    for v = 0 to n - 1 do
      let ns = neighbours g v in
      let images = List.map (fun u -> h.(u)) ns in
      let sorted = List.sort_uniq Int.compare images in
      if List.length sorted <> List.length images then ok := false
    done;
    !ok
  in
  let is_hom () =
    List.for_all (fun (u, v) -> has_edge g' h.(u) h.(v)) g.edges
  in
  let rec go i =
    if i = n then begin
      if is_hom () && locally_injective () then incr count
    end
    else
      for b = 0 to m - 1 do
        h.(i) <- b;
        go (i + 1)
      done
  in
  if n = 0 then count := 1 else if m > 0 then go 0;
  !count
