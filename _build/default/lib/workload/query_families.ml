module Ecq = Ac_query.Ecq

let friends () =
  (* x = 0, y = 1, z = 2 *)
  Ecq.make
    ~var_names:[| "x"; "y"; "z" |]
    ~num_free:1 ~num_vars:3
    [ Ecq.Atom ("F", [| 0; 1 |]); Ecq.Atom ("F", [| 0; 2 |]); Ecq.Diseq (1, 2) ]

let star_distinct k =
  if k < 1 then invalid_arg "Query_families.star_distinct";
  (* free x_0..x_{k-1}, existential centre y = k *)
  let atoms = List.init k (fun i -> Ecq.Atom ("E", [| k; i |])) in
  let diseqs = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      diseqs := Ecq.Diseq (i, j) :: !diseqs
    done
  done;
  Ecq.make ~num_free:k ~num_vars:(k + 1) (atoms @ !diseqs)

let path_endpoints n =
  if n < 1 then invalid_arg "Query_families.path_endpoints";
  (* variables: 0 = x (start), 1 = y (end), 2.. = middles; path 0 - 2 - 3
     - .. - 1 with n edges *)
  if n = 1 then Ecq.make ~num_free:2 ~num_vars:2 [ Ecq.Atom ("E", [| 0; 1 |]) ]
  else begin
    let middle i = 2 + i in
    let atoms =
      Ecq.Atom ("E", [| 0; middle 0 |])
      :: Ecq.Atom ("E", [| middle (n - 2); 1 |])
      :: List.init (n - 2) (fun i -> Ecq.Atom ("E", [| middle i; middle (i + 1) |]))
    in
    Ecq.make ~num_free:2 ~num_vars:(n + 1) atoms
  end

let triangle_negation () =
  Ecq.make
    ~var_names:[| "x"; "y"; "z" |]
    ~num_free:2 ~num_vars:3
    [
      Ecq.Atom ("E", [| 0; 1 |]);
      Ecq.Atom ("E", [| 1; 2 |]);
      Ecq.Neg_atom ("E", [| 0; 2 |]);
      Ecq.Diseq (0, 2);
    ]

let grid_query ?(num_free = 1) rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Query_families.grid_query";
  let n = rows * cols in
  if num_free < 0 || num_free > n then invalid_arg "Query_families.grid_query";
  let idx i j = (i * cols) + j in
  let atoms = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if j + 1 < cols then atoms := Ecq.Atom ("E", [| idx i j; idx i (j + 1) |]) :: !atoms;
      if i + 1 < rows then atoms := Ecq.Atom ("E", [| idx i j; idx (i + 1) j |]) :: !atoms
    done
  done;
  let atoms = if !atoms = [] then [ Ecq.Atom ("V", [| 0 |]) ] else !atoms in
  Ecq.make ~num_free ~num_vars:n atoms

let hamiltonian n =
  if n < 2 then invalid_arg "Query_families.hamiltonian";
  let atoms = List.init (n - 1) (fun i -> Ecq.Atom ("E", [| i; i + 1 |])) in
  let q = Ecq.make ~num_free:n ~num_vars:n atoms in
  Ecq.all_pairs_diseq_free q

let lihom g =
  let k = Graph.num_vertices g in
  if k < 1 then invalid_arg "Query_families.lihom";
  let atoms =
    List.map (fun (u, v) -> Ecq.Atom ("E", [| u; v |])) (Graph.edges g)
  in
  let diseqs =
    List.map (fun (u, v) -> Ecq.Diseq (u, v)) (Graph.common_neighbour_pairs g)
  in
  let atoms =
    (* isolated vertices still need an atom; bind them with a unary V *)
    let covered = Array.make k false in
    List.iter
      (fun (u, v) ->
        covered.(u) <- true;
        covered.(v) <- true)
      (Graph.edges g);
    let unary =
      List.init k Fun.id
      |> List.filter_map (fun v ->
             if covered.(v) then None else Some (Ecq.Atom ("V", [| v |])))
    in
    atoms @ unary
  in
  Ecq.make ~num_free:k ~num_vars:k (atoms @ diseqs)

let wide_path ?(num_free = 2) ~k ~arity () =
  if k < 1 || arity < 2 then invalid_arg "Query_families.wide_path";
  (* atom i covers variables [i*(a-1) .. i*(a-1) + a - 1]; consecutive
     atoms share exactly one variable *)
  let num_vars = (k * (arity - 1)) + 1 in
  if num_free > num_vars then invalid_arg "Query_families.wide_path";
  let atoms =
    List.init k (fun i ->
        Ecq.Atom ("R", Array.init arity (fun j -> (i * (arity - 1)) + j)))
  in
  let diseqs =
    List.init k (fun i ->
        let base = i * (arity - 1) in
        Ecq.Diseq (base, base + 1))
  in
  Ecq.make ~num_free ~num_vars (atoms @ diseqs)

let fractional_triangle () =
  Ecq.make
    ~var_names:[| "x"; "y"; "z" |]
    ~num_free:1 ~num_vars:3
    [
      Ecq.Atom ("E1", [| 0; 1 |]);
      Ecq.Atom ("E2", [| 1; 2 |]);
      Ecq.Atom ("E3", [| 2; 0 |]);
    ]

let acyclic_join () =
  Ecq.make
    ~var_names:[| "x"; "y"; "z"; "w" |]
    ~num_free:2 ~num_vars:4
    [
      Ecq.Atom ("R", [| 0; 2 |]);
      Ecq.Atom ("S", [| 2; 1 |]);
      Ecq.Atom ("T", [| 2; 3 |]);
    ]

let clique_query ?(num_free = 2) k =
  if k < 2 then invalid_arg "Query_families.clique_query";
  if num_free < 0 || num_free > k then invalid_arg "Query_families.clique_query";
  let atoms = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      atoms := Ecq.Atom ("E", [| i; j |]) :: !atoms
    done
  done;
  Ecq.make ~num_free ~num_vars:k !atoms

let landscape () =
  [
    ("friends (eq. 1)", friends ());
    ("star-distinct k=3", star_distinct 3);
    ("path n=4", path_endpoints 4);
    ("triangle-negation", triangle_negation ());
    ("grid 2x3", grid_query 2 3);
    ("grid 3x3", grid_query 3 3);
    ("hamiltonian n=5", hamiltonian 5);
    ("wide-path k=3 a=4", wide_path ~k:3 ~arity:4 ());
    ("fractional-triangle", fractional_triangle ());
    ("acyclic-join", acyclic_join ());
    ("clique k=4", clique_query 4);
  ]
