(** The query families exercised by the paper's claims (see DESIGN.md §4).

    Each constructor documents which experiment and theorem it belongs
    to. All queries use relation symbols matching the generators in
    {!Dbgen} / {!Graph}. *)

(** Equation (1): [φ(x) = ∃y ∃z. F(x,y) ∧ F(x,z) ∧ y ≠ z] — "people with
    at least two friends". DCQ, tw 1. (E1) *)
val friends : unit -> Ac_query.Ecq.t

(** Footnote 4 with distinctness: [φ(x_1..x_k) = ∃y. ⋀ E(y, x_i)] plus
    pairwise disequalities on the [x_i]. DCQ, tw 1, ℓ = k. (E1) *)
val star_distinct : int -> Ac_query.Ecq.t

(** [φ(x, y) = ∃ mid. E-path of length n] from [x] to [y]. CQ, tw 1. *)
val path_endpoints : int -> Ac_query.Ecq.t

(** ECQ with a negated atom:
    [φ(x,y) = ∃z. E(x,y) ∧ E(y,z) ∧ ¬E(x,z) ∧ x ≠ z]. tw 2, arity 2. (E1) *)
val triangle_negation : unit -> Ac_query.Ecq.t

(** CQ whose hypergraph is the [r × c] grid; treewidth [min r c]. The
    first [num_free] variables (default 1) are free. (E3) *)
val grid_query : ?num_free:int -> int -> int -> Ac_query.Ecq.t

(** Observation 10: [φ(x_1..x_n) = ⋀ E(x_i, x_{i+1}) ∧ ⋀_{i<j} x_i ≠ x_j];
    answers = Hamiltonian paths. DCQ, tw 1. (E4) *)
val hamiltonian : int -> Ac_query.Ecq.t

(** Corollary 6: [φ(G)] whose answers in [D(G')] are the locally injective
    homomorphisms from [G] to [G']. (E2) *)
val lihom : Graph.t -> Ac_query.Ecq.t

(** High-arity bounded-adaptive-width DCQ: [k] atoms of arity [a] over
    relation [R], consecutive atoms chaining on one shared variable, plus
    one disequality inside each atom. Every bag is covered by one atom, so
    fhw = aw-bound = 1 while the arity grows. First [num_free] variables
    free (default 2). (E5) *)
val wide_path : ?num_free:int -> k:int -> arity:int -> unit -> Ac_query.Ecq.t

(** Triangle with three distinct symbols:
    [φ(x) = ∃y z. E1(x,y) ∧ E2(y,z) ∧ E3(z,x)] — fhw = 1.5 < hw = 2:
    the family separating Theorem 16 from Theorem 38. (E6) *)
val fractional_triangle : unit -> Ac_query.Ecq.t

(** Acyclic join with quantified middle variables:
    [φ(x, y) = ∃z w. R(x,z) ∧ S(z,y) ∧ T(z,w)]. hw 1. (E6) *)
val acyclic_join : unit -> Ac_query.Ecq.t

(** [clique_query ?num_free k]: CQ whose hypergraph is [K_k]
    (treewidth k-1) — counts edges/tuples extendable to a k-clique. The
    family driving the exact-counting wall of E3. Default [num_free] 2. *)
val clique_query : ?num_free:int -> int -> Ac_query.Ecq.t

(** Named family list for the width-landscape experiment (E7). *)
val landscape : unit -> (string * Ac_query.Ecq.t) list
