lib/workload/dbgen.ml: Ac_relational Array Float Graph List Random
