lib/workload/dbgen.mli: Ac_relational Random
