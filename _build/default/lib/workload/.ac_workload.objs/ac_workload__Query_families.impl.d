lib/workload/query_families.ml: Ac_query Array Fun Graph List
