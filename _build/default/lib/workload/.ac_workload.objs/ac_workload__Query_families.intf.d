lib/workload/query_families.mli: Ac_query Graph
