lib/workload/graph.mli: Ac_hypergraph Ac_relational Random
