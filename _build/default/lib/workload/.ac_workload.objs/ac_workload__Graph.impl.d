lib/workload/graph.ml: Ac_hypergraph Ac_relational Array Fun Hashtbl Int List Random
