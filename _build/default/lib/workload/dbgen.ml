module Structure = Ac_relational.Structure

let pow_capped base exp cap =
  let rec go acc n =
    if n = 0 then acc
    else if acc > cap / base then cap + 1
    else go (acc * base) (n - 1)
  in
  go 1 exp

let random_structure ~rng ~universe_size relations =
  let s = Structure.create ~universe_size in
  List.iter
    (fun (name, arity, count) ->
      Structure.declare s name ~arity;
      let space = pow_capped universe_size arity 10_000_000 in
      let count = min count space in
      let rel = Structure.relation s name in
      let attempts = ref 0 in
      while
        Ac_relational.Relation.cardinality rel < count && !attempts < 100 * (count + 1)
      do
        incr attempts;
        let tuple = Array.init arity (fun _ -> Random.State.int rng universe_size) in
        Ac_relational.Relation.add rel tuple
      done)
    relations;
  s

let friends_database ~rng ~n ~avg_degree =
  let p = if n <= 1 then 0.0 else avg_degree /. float_of_int (n - 1) in
  let g = Graph.random_gnp ~rng n (Float.min 1.0 p) in
  Graph.to_structure ~symbol:"F" g

let high_arity_database ~rng ~universe_size ~arity ~count =
  random_structure ~rng ~universe_size [ ("R", arity, count) ]
