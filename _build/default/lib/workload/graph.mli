(** Simple undirected graphs — the workload substrate for the locally
    injective homomorphism application (Corollary 6), the Hamiltonian-path
    hardness construction (Observation 10) and the random databases of the
    experiments. *)

type t

val create : num_vertices:int -> (int * int) list -> t
val num_vertices : t -> int

(** Normalised (u < v) edge list, deduplicated, no self-loops. *)
val edges : t -> (int * int) list

val num_edges : t -> int
val neighbours : t -> int -> int list
val degree : t -> int -> int
val has_edge : t -> int -> int -> bool

(** Pairs [(i, j)], [i < j], of distinct vertices with a common neighbour
    — the paper's [cn(G)] used in the locally-injective encoding. *)
val common_neighbour_pairs : t -> (int * int) list

(** Symmetric binary relation [symbol] (default ["E"]) over the vertex
    universe: both [(u,v)] and [(v,u)] for each edge. *)
val to_structure : ?symbol:string -> t -> Ac_relational.Structure.t

(** 2-uniform hypergraph of the graph (isolated vertices become singleton
    edges). *)
val to_hypergraph : t -> Ac_hypergraph.Hypergraph.t

(** {2 Families} *)

val path : int -> t
val cycle : int -> t
val clique : int -> t
val star : int -> t
val grid : int -> int -> t
val binary_tree : depth:int -> t

(** Erdős–Rényi [G(n, p)]. *)
val random_gnp : rng:Random.State.t -> int -> float -> t

(** Uniform graph with exactly [m] edges ([m ≤ n(n-1)/2]). *)
val random_gnm : rng:Random.State.t -> int -> int -> t

(** Exact number of Hamiltonian paths (ordered vertex sequences visiting
    every vertex once along edges; each undirected path is counted in both
    directions, matching the answer count of Observation 10's query).
    Held–Karp subset DP; [n ≤ 20]. *)
val count_hamiltonian_paths : t -> int

(** Exact count of locally injective homomorphisms from [g] into [g']
    (brute force; testing baseline). *)
val count_locally_injective_brute : t -> t -> int
