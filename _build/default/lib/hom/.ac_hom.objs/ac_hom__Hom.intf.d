lib/hom/hom.mli: Ac_hypergraph Ac_join Ac_relational
