lib/hom/hom.ml: Ac_hypergraph Ac_join Ac_relational Array Fun Hashtbl Int List Option Printf
