(** Exact counting of accepted labelled trees — the verification baselines
    for the #TA FPRAS (Lemma 51).

    [count_fixed_shape] counts the labelings of one given shape that the
    automaton accepts, by a subset-construction dynamic program: for every
    node it maintains the distribution of "exact run-state sets" over
    labelings of the subtree. Exponential in the number of states in the
    worst case, but exact — usable for small automata.

    [count_slice] is the paper's [#TA]: it sums [count_fixed_shape] over
    all ordered binary tree shapes with exactly [n] nodes.

    [count_fixed_shape_brute] enumerates all [|Σ|^n] labelings; the
    ultimate ground truth for tiny instances. *)

val count_fixed_shape : Tree_automaton.t -> Ltree.shape -> int
val count_slice : Tree_automaton.t -> int -> int
val count_fixed_shape_brute : Tree_automaton.t -> Ltree.shape -> int
