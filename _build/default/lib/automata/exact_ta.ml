module Iset = Set.Make (Int)

(* Distribution over exact run-state sets, keyed by the sorted element
   list. *)
type dist = (int list, int) Hashtbl.t

let add_to (d : dist) key count =
  let prev = Option.value ~default:0 (Hashtbl.find_opt d key) in
  Hashtbl.replace d key (prev + count)

(* States admitting a run at a node labelled [symbol], given the exact
   run-state sets of the children. *)
let step a ~symbol ~children_sets =
  let candidates =
    List.init (Tree_automaton.num_states a) (fun s ->
        (s, Tree_automaton.transitions a ~state:s ~symbol))
  in
  List.fold_left
    (fun acc (s, rhss) ->
      let fires =
        List.exists
          (fun rhs ->
            match (rhs, children_sets) with
            | Tree_automaton.Stop, [] -> true
            | Tree_automaton.One s1, [ c ] -> Iset.mem s1 c
            | Tree_automaton.Two (s1, s2), [ c1; c2 ] ->
                Iset.mem s1 c1 && Iset.mem s2 c2
            | _ -> false)
          rhss
      in
      if fires then Iset.add s acc else acc)
    Iset.empty candidates

let rec distribution a (Ltree.Shape kids) : dist =
  let out : dist = Hashtbl.create 16 in
  let child_dists = List.map (distribution a) kids in
  let symbols = List.init (Tree_automaton.num_symbols a) Fun.id in
  (match child_dists with
  | [] ->
      List.iter
        (fun symbol ->
          let r = step a ~symbol ~children_sets:[] in
          add_to out (Iset.elements r) 1)
        symbols
  | [ d1 ] ->
      Hashtbl.iter
        (fun key1 c1 ->
          let set1 = Iset.of_list key1 in
          List.iter
            (fun symbol ->
              let r = step a ~symbol ~children_sets:[ set1 ] in
              add_to out (Iset.elements r) c1)
            symbols)
        d1
  | [ d1; d2 ] ->
      Hashtbl.iter
        (fun key1 c1 ->
          let set1 = Iset.of_list key1 in
          Hashtbl.iter
            (fun key2 c2 ->
              let set2 = Iset.of_list key2 in
              List.iter
                (fun symbol ->
                  let r = step a ~symbol ~children_sets:[ set1; set2 ] in
                  add_to out (Iset.elements r) (c1 * c2))
                symbols)
            d2)
        d1
  | _ -> invalid_arg "Exact_ta: shape with more than 2 children");
  out

let count_fixed_shape a shape =
  let d = distribution a shape in
  let s0 = Tree_automaton.initial a in
  Hashtbl.fold
    (fun key count acc -> if List.mem s0 key then acc + count else acc)
    d 0

let count_slice a n =
  List.fold_left
    (fun acc shape -> acc + count_fixed_shape a shape)
    0
    (Ltree.shapes_with_size n)

let count_fixed_shape_brute a shape =
  Ltree.labelings ~alphabet:(Tree_automaton.num_symbols a) shape
  |> List.filter (Tree_automaton.accepts a)
  |> List.length
