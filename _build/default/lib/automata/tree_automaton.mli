(** (Nondeterministic) top-down tree automata over [Trees₂[Σ]]
    (Definition 50).

    States and symbols are dense integers. A transition relates a
    [(state, symbol)] pair to [∅] (the node must be a leaf), to one
    successor state (unary node) or to an ordered pair of successor
    states (binary node). The automaton accepts a labelled tree when
    there is a run assigning the [initial] state to the root.

    (The paper writes Δ as a function; the automaton of Lemma 52 needs
    several successors per [(state, symbol)] pair — e.g. each extension
    [α₁ ∈ A_α] of a bag assignment yields its own transition — so the
    implementation is nondeterministic, matching the #NFA setting of
    Arenas et al.) *)

type rhs =
  | Stop                 (** leaf transition [→ ∅] *)
  | One of int           (** unary transition *)
  | Two of int * int     (** binary transition (left, right) *)

type t

val create : num_states:int -> num_symbols:int -> initial:int -> t
val num_states : t -> int
val num_symbols : t -> int
val initial : t -> int

(** [add_transition a ~state ~symbol rhs] — duplicates are ignored. *)
val add_transition : t -> state:int -> symbol:int -> rhs -> unit

val transitions : t -> state:int -> symbol:int -> rhs list

(** Total number of transitions. *)
val num_transitions : t -> int

(** Iterate over all transitions. *)
val iter_transitions : t -> (state:int -> symbol:int -> rhs -> unit) -> unit

(** [run_states a tree] — the set (sorted list) of states [s] such that
    the subtree admits a run starting from [s]. Memoised on [Ltree] node
    ids, so repeated queries over shared subtrees are cheap. The memo
    table lives inside [t]; it is sound because [Ltree] ids are unique. *)
val run_states : t -> Ltree.t -> int list

val accepts : t -> Ltree.t -> bool

(** [accepts_from a s tree] — run from a given state. *)
val accepts_from : t -> int -> Ltree.t -> bool
