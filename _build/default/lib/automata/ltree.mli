(** Labelled binary trees — the inputs of tree automata
    (Definition 49: [Trees₂[Σ]]).

    Symbols are dense integers [0 .. |Σ|-1]. Nodes carry unique physical
    ids so that algorithms sharing subtrees (the ACJR sketches build new
    trees out of previously sampled ones) can memoise per-subtree results
    in O(1). Ids are allocated from a global counter; structural equality
    ignores them. *)

type t = private {
  id : int;
  label : int;
  children : t list;  (** length ≤ 2 *)
}

(** [node label children] allocates a fresh node ([≤ 2] children). *)
val node : int -> t list -> t

val leaf : int -> t
val size : t -> int

(** Structural equality / comparison (labels and shape, not ids). *)
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** An unlabelled shape: the same structure without labels. *)
type shape = Shape of shape list

val shape_of : t -> shape
val shape_size : shape -> int

(** All binary-tree shapes with exactly [n] nodes (each node ≤ 2
    children). Exponential; for small [n] only. *)
val shapes_with_size : int -> shape list

(** All labelings of [shape] over an alphabet of the given size.
    Exponential; testing only. *)
val labelings : alphabet:int -> shape -> t list

val pp : Format.formatter -> t -> unit
