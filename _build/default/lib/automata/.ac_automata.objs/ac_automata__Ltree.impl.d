lib/automata/ltree.ml: Format Int List
