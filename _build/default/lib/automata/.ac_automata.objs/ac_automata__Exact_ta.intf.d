lib/automata/exact_ta.mli: Ltree Tree_automaton
