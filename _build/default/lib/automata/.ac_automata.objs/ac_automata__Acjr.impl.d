lib/automata/acjr.ml: Array Hashtbl Int List Ltree Option Random Set Tree_automaton
