lib/automata/acjr.mli: Ltree Random Tree_automaton
