lib/automata/tree_automaton.mli: Ltree
