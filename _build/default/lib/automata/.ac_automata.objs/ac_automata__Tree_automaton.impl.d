lib/automata/tree_automaton.ml: Hashtbl Int List Ltree Set
