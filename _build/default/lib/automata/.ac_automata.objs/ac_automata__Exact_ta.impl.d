lib/automata/exact_ta.ml: Fun Hashtbl Int List Ltree Option Set Tree_automaton
