lib/automata/ltree.mli: Format
