(** Hypergraphs (Definition 3 context).

    Vertices are [0 .. num_vertices - 1]; a hyperedge is a non-empty vertex
    set. Duplicate hyperedges are collapsed. *)

type t

val create : num_vertices:int -> int list list -> t
val num_vertices : t -> int
val edges : t -> Bitset.t list
val num_edges : t -> int

(** Maximum hyperedge cardinality (the paper's arity); [0] if edgeless. *)
val arity : t -> int

(** Edges incident to a vertex. *)
val incident : t -> int -> Bitset.t list

(** [induced h x] is [H[X]] (Definition 39): vertex set [x], edges
    [{e ∩ X | e ∈ E(H), e ∩ X ≠ ∅}]. The vertex numbering is kept; edges
    are returned as bitsets over the original capacity. *)
val induced_edges : t -> Bitset.t -> Bitset.t list

(** Primal (Gaifman) graph adjacency: [adj.(v)] is the set of vertices
    sharing an edge with [v], excluding [v] itself. *)
val primal_adjacency : t -> Bitset.t array

(** [is_edge_subset h s] holds when some hyperedge contains [s]. *)
val covered_by_edge : t -> Bitset.t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {2 Common families} — used by tests and by the width-landscape
    experiment (E7). *)

(** Simple path [0 - 1 - ... - n-1] as a 2-uniform hypergraph. *)
val path : int -> t

(** Cycle on [n >= 3] vertices. *)
val cycle : int -> t

(** Complete graph on [n] vertices (2-uniform). *)
val clique : int -> t

(** [grid r c] is the r×c grid graph, vertex [(i,j)] numbered [i*c + j]. *)
val grid : int -> int -> t

(** Star with centre [0] and [n] leaves. *)
val star : int -> t

(** [hypercycle n] — vertices [0..2n-1], the [n] "long" ternary edges
    {2i, 2i+1, 2i+2 mod 2n}; fhw-friendly family with arity 3. *)
val hypercycle : int -> t
