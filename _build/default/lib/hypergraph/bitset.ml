type t = { capacity : int; words : int array }

let words_for capacity = (capacity + 62) / 63

let create ~capacity =
  if capacity < 0 then invalid_arg "Bitset.create";
  { capacity; words = Array.make (max 1 (words_for capacity)) 0 }

let capacity s = s.capacity

let check s i =
  if i < 0 || i >= s.capacity then
    invalid_arg (Printf.sprintf "Bitset: element %d outside capacity %d" i s.capacity)

let mem s i =
  check s i;
  s.words.(i / 63) land (1 lsl (i mod 63)) <> 0

let with_copy s f =
  let words = Array.copy s.words in
  f words;
  { capacity = s.capacity; words }

let add s i =
  check s i;
  with_copy s (fun w -> w.(i / 63) <- w.(i / 63) lor (1 lsl (i mod 63)))

let remove s i =
  check s i;
  with_copy s (fun w -> w.(i / 63) <- w.(i / 63) land lnot (1 lsl (i mod 63)))

let binop f a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch";
  let words = Array.mapi (fun i wa -> f wa b.words.(i)) a.words in
  { capacity = a.capacity; words }

let union = binop ( lor )
let inter = binop ( land )
let diff = binop (fun x y -> x land lnot y)

let popcount =
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  go 0

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

let is_empty s = Array.for_all (fun w -> w = 0) s.words

let subset a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch";
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1)) in
  go 0

let equal a b = a.capacity = b.capacity && Array.for_all2 ( = ) a.words b.words

let compare a b =
  let c = Int.compare a.capacity b.capacity in
  if c <> 0 then c
  else
    let n = Array.length a.words in
    let rec go i =
      if i >= n then 0
      else
        let c = Int.compare a.words.(i) b.words.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let hash s =
  Array.fold_left (fun acc w -> ((acc * 0x01000193) lxor w) land max_int) 0x811c9dc5 s.words

let iter f s =
  for i = 0 to s.capacity - 1 do
    if s.words.(i / 63) land (1 lsl (i mod 63)) <> 0 then f i
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let for_all p s = fold (fun i acc -> acc && p i) s true
let exists p s = fold (fun i acc -> acc || p i) s false

let choose s =
  let found = ref None in
  (try
     iter
       (fun i ->
         found := Some i;
         raise Exit)
       s
   with Exit -> ());
  !found

let of_list ~capacity elements =
  let s = create ~capacity in
  let words = Array.copy s.words in
  List.iter
    (fun i ->
      if i < 0 || i >= capacity then invalid_arg "Bitset.of_list";
      words.(i / 63) <- words.(i / 63) lor (1 lsl (i mod 63)))
    elements;
  { capacity; words }

let singleton ~capacity i = of_list ~capacity [ i ]

let full ~capacity =
  let s = create ~capacity in
  let words = Array.copy s.words in
  for i = 0 to capacity - 1 do
    words.(i / 63) <- words.(i / 63) lor (1 lsl (i mod 63))
  done;
  { capacity; words }

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])

let pp fmt s =
  Format.fprintf fmt "{%s}"
    (String.concat "," (List.map string_of_int (to_list s)))

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
