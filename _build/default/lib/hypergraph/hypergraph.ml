type t = {
  num_vertices : int;
  edges : Bitset.t array; (* deduplicated, arbitrary order *)
}

let create ~num_vertices edge_lists =
  if num_vertices < 0 then invalid_arg "Hypergraph.create";
  let seen = Bitset.Table.create 16 in
  let edges = ref [] in
  List.iter
    (fun vs ->
      if vs = [] then invalid_arg "Hypergraph.create: empty hyperedge";
      let e = Bitset.of_list ~capacity:num_vertices vs in
      if not (Bitset.Table.mem seen e) then begin
        Bitset.Table.replace seen e ();
        edges := e :: !edges
      end)
    edge_lists;
  { num_vertices; edges = Array.of_list (List.rev !edges) }

let num_vertices h = h.num_vertices
let edges h = Array.to_list h.edges
let num_edges h = Array.length h.edges

let arity h =
  Array.fold_left (fun acc e -> max acc (Bitset.cardinal e)) 0 h.edges

let incident h v =
  Array.to_list h.edges |> List.filter (fun e -> Bitset.mem e v)

let induced_edges h x =
  let seen = Bitset.Table.create 16 in
  Array.to_list h.edges
  |> List.filter_map (fun e ->
         let e' = Bitset.inter e x in
         if Bitset.is_empty e' || Bitset.Table.mem seen e' then None
         else begin
           Bitset.Table.replace seen e' ();
           Some e'
         end)

let primal_adjacency h =
  let adj = Array.init h.num_vertices (fun _ -> Bitset.create ~capacity:h.num_vertices) in
  Array.iter
    (fun e ->
      Bitset.iter
        (fun v -> adj.(v) <- Bitset.remove (Bitset.union adj.(v) e) v)
        e)
    h.edges;
  adj

let covered_by_edge h s = Array.exists (fun e -> Bitset.subset s e) h.edges

let equal a b =
  a.num_vertices = b.num_vertices
  &&
  let sort es = List.sort Bitset.compare (Array.to_list es) in
  List.equal Bitset.equal (sort a.edges) (sort b.edges)

let pp fmt h =
  Format.fprintf fmt "@[<hov>H(n=%d;" h.num_vertices;
  Array.iter (fun e -> Format.fprintf fmt " %a" Bitset.pp e) h.edges;
  Format.fprintf fmt ")@]"

let path n =
  if n < 1 then invalid_arg "Hypergraph.path";
  create ~num_vertices:n
    (if n = 1 then [ [ 0 ] ]
     else List.init (n - 1) (fun i -> [ i; i + 1 ]))

let cycle n =
  if n < 3 then invalid_arg "Hypergraph.cycle";
  create ~num_vertices:n (List.init n (fun i -> [ i; (i + 1) mod n ]))

let clique n =
  if n < 1 then invalid_arg "Hypergraph.clique";
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := [ i; j ] :: !edges
    done
  done;
  create ~num_vertices:n (if n = 1 then [ [ 0 ] ] else !edges)

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Hypergraph.grid";
  let idx i j = (i * cols) + j in
  let edges = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if j + 1 < cols then edges := [ idx i j; idx i (j + 1) ] :: !edges;
      if i + 1 < rows then edges := [ idx i j; idx (i + 1) j ] :: !edges
    done
  done;
  create ~num_vertices:(rows * cols)
    (if rows * cols = 1 then [ [ 0 ] ] else !edges)

let star n =
  if n < 1 then invalid_arg "Hypergraph.star";
  create ~num_vertices:(n + 1) (List.init n (fun i -> [ 0; i + 1 ]))

let hypercycle n =
  if n < 2 then invalid_arg "Hypergraph.hypercycle";
  let m = 2 * n in
  create ~num_vertices:m
    (List.init n (fun i -> [ 2 * i; (2 * i) + 1; ((2 * i) + 2) mod m ]))
