type t = {
  bags : Bitset.t array;
  parent : int array;
}

let num_nodes d = Array.length d.bags

let root d =
  let r = ref (-1) in
  Array.iteri (fun i p -> if p = -1 then r := i) d.parent;
  if !r < 0 then invalid_arg "Tree_decomposition.root: no root";
  !r

let children d =
  let kids = Array.make (num_nodes d) [] in
  Array.iteri (fun i p -> if p >= 0 then kids.(p) <- i :: kids.(p)) d.parent;
  kids

let width d =
  Array.fold_left (fun acc b -> max acc (Bitset.cardinal b - 1)) (-1) d.bags

let is_valid h d =
  let n = num_nodes d in
  n > 0
  && (* exactly one root, parents in range, acyclic by increasing depth *)
  (let roots = Array.to_list d.parent |> List.filter (fun p -> p = -1) in
   List.length roots = 1)
  && Array.for_all (fun p -> p = -1 || (p >= 0 && p < n)) d.parent
  && (* acyclicity: following parents terminates *)
  (let ok = ref true in
   Array.iteri
     (fun i _ ->
       let steps = ref 0 and cur = ref i in
       while !cur <> -1 && !steps <= n do
         cur := d.parent.(!cur);
         incr steps
       done;
       if !steps > n then ok := false)
     d.parent;
   !ok)
  && (* (i) every hyperedge inside some bag *)
  List.for_all
    (fun e -> Array.exists (fun b -> Bitset.subset e b) d.bags)
    (Hypergraph.edges h)
  && (* (ii) bags containing each vertex form a connected subtree: the
        nodes containing v, minus one "highest" node, must each have a
        parent also containing v. *)
  (let ok = ref true in
   for v = 0 to Hypergraph.num_vertices h - 1 do
     let holders = ref [] in
     Array.iteri (fun i b -> if Bitset.mem b v then holders := i :: !holders) d.bags;
     let tops =
       List.filter
         (fun i -> d.parent.(i) = -1 || not (Bitset.mem d.bags.(d.parent.(i)) v))
         !holders
     in
     if !holders <> [] && List.length tops <> 1 then ok := false
   done;
   !ok)

(* Adjacency-matrix view of the primal graph, mutated to hold fill edges
   while simulating an elimination order. *)
let fill_matrix h =
  let n = Hypergraph.num_vertices h in
  let adj = Array.make_matrix n n false in
  List.iter
    (fun e ->
      let vs = Bitset.to_list e in
      List.iter
        (fun u -> List.iter (fun v -> if u <> v then adj.(u).(v) <- true) vs)
        vs)
    (Hypergraph.edges h);
  adj

let of_elimination_order h order =
  let n = Hypergraph.num_vertices h in
  if Array.length order <> n then invalid_arg "of_elimination_order: bad order";
  if n = 0 then invalid_arg "of_elimination_order: empty hypergraph";
  let adj = fill_matrix h in
  let position = Array.make n 0 in
  Array.iteri (fun i v -> position.(v) <- i) order;
  let bags = Array.make n (Bitset.create ~capacity:n) in
  let parent = Array.make n (-1) in
  let eliminated = Array.make n false in
  Array.iteri
    (fun step v ->
      let later =
        List.init n Fun.id
        |> List.filter (fun u -> u <> v && (not eliminated.(u)) && adj.(v).(u))
      in
      bags.(step) <- Bitset.of_list ~capacity:n (v :: later);
      (* connect later neighbours into a clique (fill edges) *)
      List.iter
        (fun u ->
          List.iter
            (fun w ->
              if u <> w then begin
                adj.(u).(w) <- true;
                adj.(w).(u) <- true
              end)
            later)
        later;
      eliminated.(v) <- true;
      (* parent = node of the earliest-eliminated later neighbour *)
      match later with
      | [] -> parent.(step) <- (if step = n - 1 then -1 else step + 1)
      | _ ->
          let u =
            List.fold_left
              (fun best u -> if position.(u) < position.(best) then u else best)
              (List.hd later) later
          in
          parent.(step) <- position.(u))
    order;
  parent.(n - 1) <- -1;
  { bags; parent }

let min_fill_order h =
  let n = Hypergraph.num_vertices h in
  let adj = fill_matrix h in
  let eliminated = Array.make n false in
  let order = Array.make n 0 in
  let live_neighbours v =
    List.init n Fun.id
    |> List.filter (fun u -> u <> v && (not eliminated.(u)) && adj.(v).(u))
  in
  let fill_cost v =
    let ns = live_neighbours v in
    let missing = ref 0 in
    List.iter
      (fun u -> List.iter (fun w -> if u < w && not adj.(u).(w) then incr missing) ns)
      ns;
    !missing
  in
  for step = 0 to n - 1 do
    let best = ref (-1) and best_cost = ref max_int in
    for v = 0 to n - 1 do
      if not eliminated.(v) then begin
        let c = fill_cost v in
        if c < !best_cost then begin
          best := v;
          best_cost := c
        end
      end
    done;
    let v = !best in
    let ns = live_neighbours v in
    List.iter
      (fun u ->
        List.iter
          (fun w ->
            if u <> w then begin
              adj.(u).(w) <- true;
              adj.(w).(u) <- true
            end)
          ns)
      ns;
    eliminated.(v) <- true;
    order.(step) <- v
  done;
  order

let primal_adj_masks h =
  let n = Hypergraph.num_vertices h in
  let adj = Array.make n 0 in
  List.iter
    (fun e ->
      let vs = Bitset.to_list e in
      List.iter
        (fun u ->
          List.iter (fun v -> if u <> v then adj.(u) <- adj.(u) lor (1 lsl v)) vs)
        vs)
    (Hypergraph.edges h);
  adj

(* Exact f-width by Held–Karp style DP over subsets of eliminated vertices.
   g(S) = min over v in S of max(g(S \ v), cost(bag(S \ v, v))) where
   bag(S, v) = {v} ∪ {w ∉ S, w ≠ v | v~w via a path with interior in S}. *)
let exact_f_width h ~cost =
  let n = Hypergraph.num_vertices h in
  if n > 22 then invalid_arg "exact_f_width: too many vertices";
  if n = 0 then invalid_arg "exact_f_width: empty hypergraph";
  let adj = primal_adj_masks h in
  let bag_of s v =
    (* BFS from v allowed to traverse vertices in s *)
    let visited = ref (1 lsl v) in
    let frontier = ref (1 lsl v) in
    let reached = ref 0 in
    while !frontier <> 0 do
      let next = ref 0 in
      for u = 0 to n - 1 do
        if !frontier land (1 lsl u) <> 0 then begin
          let nbrs = adj.(u) land lnot !visited in
          visited := !visited lor nbrs;
          (* vertices in s propagate the search; others are endpoints *)
          next := !next lor (nbrs land s);
          reached := !reached lor (nbrs land lnot s)
        end
      done;
      frontier := !next
    done;
    (1 lsl v) lor (!reached land lnot (1 lsl v))
  in
  let to_bitset mask =
    let rec collect i acc =
      if i >= n then acc
      else collect (i + 1) (if mask land (1 lsl i) <> 0 then i :: acc else acc)
    in
    Bitset.of_list ~capacity:n (collect 0 [])
  in
  let bag_cost_cache = Hashtbl.create 1024 in
  let bag_cost mask =
    match Hashtbl.find_opt bag_cost_cache mask with
    | Some c -> c
    | None ->
        let c = cost (to_bitset mask) in
        Hashtbl.add bag_cost_cache mask c;
        c
  in
  let size = 1 lsl n in
  let g = Array.make size infinity in
  let choice = Array.make size (-1) in
  g.(0) <- neg_infinity;
  for s = 1 to size - 1 do
    let best = ref infinity and best_v = ref (-1) in
    for v = 0 to n - 1 do
      if s land (1 lsl v) <> 0 then begin
        let s' = s land lnot (1 lsl v) in
        let candidate = Float.max g.(s') (bag_cost (bag_of s' v)) in
        (* accept any first vertex so the witness order stays total even
           when all costs are infinite (e.g. isolated-vertex fcn) *)
        if candidate < !best || !best_v < 0 then begin
          best := candidate;
          best_v := v
        end
      end
    done;
    g.(s) <- !best;
    choice.(s) <- !best_v
  done;
  (* reconstruct elimination order *)
  let order = Array.make n 0 in
  let s = ref (size - 1) in
  for step = n - 1 downto 0 do
    let v = choice.(!s) in
    order.(step) <- v;
    s := !s land lnot (1 lsl v)
  done;
  (g.(size - 1), order)

let min_degree_order h =
  let n = Hypergraph.num_vertices h in
  let adj = fill_matrix h in
  let eliminated = Array.make n false in
  let order = Array.make n 0 in
  let live_neighbours v =
    List.init n Fun.id
    |> List.filter (fun u -> u <> v && (not eliminated.(u)) && adj.(v).(u))
  in
  for step = 0 to n - 1 do
    let best = ref (-1) and best_degree = ref max_int in
    for v = 0 to n - 1 do
      if not eliminated.(v) then begin
        let d = List.length (live_neighbours v) in
        if d < !best_degree then begin
          best := v;
          best_degree := d
        end
      end
    done;
    let v = !best in
    let ns = live_neighbours v in
    List.iter
      (fun u ->
        List.iter
          (fun w ->
            if u <> w then begin
              adj.(u).(w) <- true;
              adj.(w).(u) <- true
            end)
          ns)
      ns;
    eliminated.(v) <- true;
    order.(step) <- v
  done;
  order

let treewidth_exact h =
  let cost b = float_of_int (Bitset.cardinal b - 1) in
  let value, order = exact_f_width h ~cost in
  let d = of_elimination_order h order in
  (int_of_float value, d)

let decompose ?(exact_limit = 14) h =
  if Hypergraph.num_vertices h <= exact_limit then snd (treewidth_exact h)
  else begin
    (* best of the two classic greedy orderings *)
    let d_fill = of_elimination_order h (min_fill_order h) in
    let d_degree = of_elimination_order h (min_degree_order h) in
    if width d_fill <= width d_degree then d_fill else d_degree
  end

let pp fmt d =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun i b ->
      Format.fprintf fmt "node %d (parent %d): %a@," i d.parent.(i) Bitset.pp b)
    d.bags;
  Format.fprintf fmt "@]"
