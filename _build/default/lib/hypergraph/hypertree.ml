type t = {
  bags : Bitset.t array;
  parent : int array;
  guards : Bitset.t list array;
}

let width d =
  Array.fold_left (fun acc g -> max acc (List.length g)) 0 d.guards

let union_guard capacity guards =
  List.fold_left Bitset.union (Bitset.create ~capacity) guards

let is_generalized h d =
  Tree_decomposition.is_valid h
    { Tree_decomposition.bags = d.bags; parent = d.parent }
  && Array.for_all Fun.id
       (Array.mapi
          (fun i bag ->
            List.for_all
              (fun g -> List.exists (Bitset.equal g) (Hypergraph.edges h))
              d.guards.(i)
            && Bitset.subset bag
                 (union_guard (Hypergraph.num_vertices h) d.guards.(i)))
          d.bags)

let subtree_nodes d =
  let n = Array.length d.bags in
  let kids = Array.make n [] in
  Array.iteri (fun i p -> if p >= 0 then kids.(p) <- i :: kids.(p)) d.parent;
  let below = Array.make n [] in
  (* postorder accumulation *)
  let rec visit node =
    let acc =
      List.fold_left (fun acc c -> visit c @ acc) [ node ] kids.(node)
    in
    below.(node) <- acc;
    acc
  in
  Array.iteri (fun i p -> if p = -1 then ignore (visit i)) d.parent;
  below

let satisfies_special_condition d =
  let capacity =
    if Array.length d.bags = 0 then 0 else Bitset.capacity d.bags.(0)
  in
  let below = subtree_nodes d in
  Array.for_all Fun.id
    (Array.mapi
       (fun i bag ->
         let guard = union_guard capacity d.guards.(i) in
         let below_bags =
           List.fold_left
             (fun acc t' -> Bitset.union acc d.bags.(t'))
             (Bitset.create ~capacity) below.(i)
         in
         Bitset.subset (Bitset.inter guard below_bags) bag)
       d.bags)

let is_valid h d = is_generalized h d && satisfies_special_condition d

(* Minimum-cardinality guard for a bag: branch and bound over the useful
   hyperedges for ≤ 20 candidates, greedy beyond. *)
let guard_for h bag =
  if Bitset.is_empty bag then []
  else begin
    let candidates =
      Hypergraph.edges h
      |> List.filter (fun e -> not (Bitset.is_empty (Bitset.inter e bag)))
    in
    let m = List.length candidates in
    if m = 0 then invalid_arg "Hypertree: bag not coverable";
    if m <= 20 then begin
      let arr = Array.of_list candidates in
      let best = ref None and best_size = ref max_int in
      let rec search idx chosen covered count =
        if Bitset.subset bag covered then begin
          if count < !best_size then begin
            best := Some chosen;
            best_size := count
          end
        end
        else if idx < m && count + 1 < !best_size then begin
          search (idx + 1) (arr.(idx) :: chosen)
            (Bitset.union covered arr.(idx))
            (count + 1);
          search (idx + 1) chosen covered count
        end
      in
      search 0 [] (Bitset.create ~capacity:(Bitset.capacity bag)) 0;
      match !best with
      | Some g -> g
      | None -> invalid_arg "Hypertree: bag not coverable"
    end
    else begin
      let remaining = ref bag and chosen = ref [] in
      while not (Bitset.is_empty !remaining) do
        let best_edge = ref None and best_gain = ref 0 in
        List.iter
          (fun e ->
            let gain = Bitset.cardinal (Bitset.inter e !remaining) in
            if gain > !best_gain then begin
              best_gain := gain;
              best_edge := Some e
            end)
          candidates;
        match !best_edge with
        | None -> invalid_arg "Hypertree: bag not coverable"
        | Some e ->
            chosen := e :: !chosen;
            remaining := Bitset.diff !remaining e
      done;
      !chosen
    end
  end

let of_tree_decomposition h (td : Tree_decomposition.t) =
  {
    bags = Array.copy td.Tree_decomposition.bags;
    parent = Array.copy td.Tree_decomposition.parent;
    guards = Array.map (guard_for h) td.Tree_decomposition.bags;
  }

let of_hypergraph ?exact_limit h =
  of_tree_decomposition h (Tree_decomposition.decompose ?exact_limit h)

let pp fmt d =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun i bag ->
      Format.fprintf fmt "node %d (parent %d): bag %a guards" i d.parent.(i)
        Bitset.pp bag;
      List.iter (fun g -> Format.fprintf fmt " %a" Bitset.pp g) d.guards.(i);
      Format.fprintf fmt "@,")
    d.bags;
  Format.fprintf fmt "@]"
