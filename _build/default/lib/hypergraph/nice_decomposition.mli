(** Nice tree decompositions (Definition 42) and the normalisation of
    Lemma 43.

    A nice decomposition is a rooted binary tree in which leaf and root
    bags are empty, join nodes have two children with identical bags, and
    unary nodes differ from their child's bag in exactly one vertex
    (introduce/forget). Every bag is a subset of a bag of the input
    decomposition, so any monotone width (treewidth, fcn-width, ...) does
    not increase (Observation 40). *)

type kind =
  | Leaf                (** no children, empty bag *)
  | Introduce of int    (** one child; bag = child's bag + v *)
  | Forget of int       (** one child; bag = child's bag - v *)
  | Join                (** two children, all three bags equal *)

type t = {
  bags : Bitset.t array;
  parent : int array;     (* -1 for the root *)
  kind : kind array;
  root : int;
}

val num_nodes : t -> int
val children : t -> int list array

(** Nodes in a bottom-up (children before parents) order. *)
val postorder : t -> int array

(** [of_decomposition h d] normalises [d] (which must be valid for [h]). *)
val of_decomposition : Hypergraph.t -> Tree_decomposition.t -> t

(** Builds a (nice) decomposition of [h] directly, via
    {!Tree_decomposition.decompose}. *)
val of_hypergraph : ?exact_limit:int -> Hypergraph.t -> t

(** Structural niceness check (Definition 42's four conditions). *)
val is_nice : t -> bool

(** Tree-decomposition validity w.r.t. a hypergraph. *)
val is_valid : Hypergraph.t -> t -> bool

val width : t -> int
val pp : Format.formatter -> t -> unit
