type kind =
  | Leaf
  | Introduce of int
  | Forget of int
  | Join

type t = {
  bags : Bitset.t array;
  parent : int array;
  kind : kind array;
  root : int;
}

let num_nodes d = Array.length d.bags

let children d =
  let kids = Array.make (num_nodes d) [] in
  Array.iteri (fun i p -> if p >= 0 then kids.(p) <- i :: kids.(p)) d.parent;
  kids

let postorder d =
  let kids = children d in
  let out = Array.make (num_nodes d) 0 in
  let cursor = ref 0 in
  let rec visit node =
    List.iter visit kids.(node);
    out.(!cursor) <- node;
    incr cursor
  in
  visit d.root;
  out

(* Intermediate tree form: each node carries its bag, kind and children. *)
type tree = { t_bag : Bitset.t; t_kind : kind; t_children : tree list }

let leaf capacity =
  { t_bag = Bitset.create ~capacity; t_kind = Leaf; t_children = [] }

(* Chain of introduces from [sub] (root bag [from_bag]) up to [to_bag],
   where [from_bag ⊆ to_bag]. *)
let introduce_chain sub from_bag to_bag =
  Bitset.fold
    (fun v (node, bag) ->
      if Bitset.mem bag v then (node, bag)
      else
        let bag' = Bitset.add bag v in
        ({ t_bag = bag'; t_kind = Introduce v; t_children = [ node ] }, bag'))
    to_bag (sub, from_bag)

(* Chain of forgets from [sub] (root bag [from_bag]) down to
   [from_bag ∩ keep]. *)
let forget_chain sub from_bag keep =
  Bitset.fold
    (fun v (node, bag) ->
      if Bitset.mem keep v then (node, bag)
      else
        let bag' = Bitset.remove bag v in
        ({ t_bag = bag'; t_kind = Forget v; t_children = [ node ] }, bag'))
    from_bag (sub, from_bag)

(* Adapt a subtree whose root bag is [from_bag] to have root bag [target]:
   forget everything outside [target], then introduce what is missing. *)
let retarget sub from_bag target =
  let sub, bag = forget_chain sub from_bag target in
  let sub, bag = introduce_chain sub bag target in
  assert (Bitset.equal bag target);
  sub

let of_decomposition h d =
  let capacity = Hypergraph.num_vertices h in
  let kids = Tree_decomposition.children d in
  let rec build node =
    let bag = d.bags.(node) in
    let built = List.map build kids.(node) in
    match built with
    | [] ->
        (* chain up from an empty leaf *)
        fst (introduce_chain (leaf capacity) (Bitset.create ~capacity) bag)
    | [ sub ] -> retarget sub d.bags.(List.hd kids.(node)) bag
    | subs ->
        (* retarget every child to [bag], then fold into a left-deep chain
           of joins (all with bag [bag]) *)
        let retargeted =
          List.map2
            (fun sub child -> retarget sub d.bags.(child) bag)
            subs kids.(node)
        in
        (match retargeted with
        | [] -> assert false
        | first :: rest ->
            List.fold_left
              (fun acc sub ->
                { t_bag = bag; t_kind = Join; t_children = [ acc; sub ] })
              first rest)
  in
  let top = build (Tree_decomposition.root d) in
  let top, _ =
    forget_chain top d.bags.(Tree_decomposition.root d) (Bitset.create ~capacity)
  in
  (* flatten *)
  let count =
    let rec sz t = 1 + List.fold_left (fun a c -> a + sz c) 0 t.t_children in
    sz top
  in
  let bags = Array.make count (Bitset.create ~capacity) in
  let parent = Array.make count (-1) in
  let kind = Array.make count Leaf in
  let cursor = ref 0 in
  let rec emit t p =
    let id = !cursor in
    incr cursor;
    bags.(id) <- t.t_bag;
    parent.(id) <- p;
    kind.(id) <- t.t_kind;
    List.iter (fun c -> emit c id) t.t_children
  in
  emit top (-1);
  { bags; parent; kind; root = 0 }

let of_hypergraph ?exact_limit h =
  of_decomposition h (Tree_decomposition.decompose ?exact_limit h)

let is_nice d =
  let kids = children d in
  Bitset.is_empty d.bags.(d.root)
  && Array.for_all Fun.id
       (Array.init (num_nodes d) (fun i ->
            let b = d.bags.(i) in
            match (d.kind.(i), kids.(i)) with
            | Leaf, [] -> Bitset.is_empty b
            | Introduce v, [ c ] ->
                Bitset.mem b v && Bitset.equal (Bitset.remove b v) d.bags.(c)
            | Forget v, [ c ] ->
                (not (Bitset.mem b v))
                && Bitset.equal (Bitset.add b v) d.bags.(c)
            | Join, [ c1; c2 ] ->
                Bitset.equal b d.bags.(c1) && Bitset.equal b d.bags.(c2)
            | _ -> false))

let is_valid h d =
  Tree_decomposition.is_valid h { Tree_decomposition.bags = d.bags; parent = d.parent }

let width d =
  Array.fold_left (fun acc b -> max acc (Bitset.cardinal b - 1)) (-1) d.bags

let pp fmt d =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun i b ->
      let k =
        match d.kind.(i) with
        | Leaf -> "leaf"
        | Introduce v -> Printf.sprintf "introduce %d" v
        | Forget v -> Printf.sprintf "forget %d" v
        | Join -> "join"
      in
      Format.fprintf fmt "node %d (parent %d, %s): %a@," i d.parent.(i) k Bitset.pp b)
    d.bags;
  Format.fprintf fmt "@]"
