(** Tree decompositions (Definition 4) and their construction.

    A decomposition is stored as a rooted forest-free tree over node
    indices [0 .. n-1] with a bag per node. Construction goes through
    elimination orderings of the primal graph: every tree decomposition of
    a hypergraph can be normalised to one arising from an elimination
    order, and bag costs only improve under taking subsets (Observation
    40), so searching elimination orders is complete for every monotone
    f-width (Definition 32). *)

type t = {
  bags : Bitset.t array;
  parent : int array; (* parent.(i) = parent node, or -1 for the root *)
}

val root : t -> int
val num_nodes : t -> int
val children : t -> int list array

(** [width d] = [max |bag| - 1] (Definition 4). *)
val width : t -> int

(** Checks the two tree-decomposition properties plus rootedness: every
    hyperedge inside some bag, and every vertex's bags forming a connected
    subtree. *)
val is_valid : Hypergraph.t -> t -> bool

(** [of_elimination_order h order] builds the fill-in decomposition for the
    given permutation of the vertices. *)
val of_elimination_order : Hypergraph.t -> int array -> t

(** Greedy minimum-fill elimination ordering of the primal graph. *)
val min_fill_order : Hypergraph.t -> int array

(** Greedy minimum-degree elimination ordering of the primal graph. *)
val min_degree_order : Hypergraph.t -> int array

(** [exact_f_width h ~cost] minimises, over all tree decompositions, the
    maximum of [cost bag] (an f-width, Definition 32), by dynamic
    programming over vertex subsets. [cost] must be monotone under set
    inclusion. Returns the optimal value and a witnessing elimination
    order. Raises [Invalid_argument] when [h] has more than 22 vertices.
    With [cost = fun b -> |b| - 1] this is exact treewidth. *)
val exact_f_width : Hypergraph.t -> cost:(Bitset.t -> float) -> float * int array

(** Exact treewidth for small hypergraphs ([exact_f_width] with cardinality
    cost); [-1] for an edgeless hypergraph is approximated as width of the
    singleton-bag decomposition, matching [tw = 0] for single vertices. *)
val treewidth_exact : Hypergraph.t -> int * t

(** Best-effort decomposition: exact when [num_vertices <= exact_limit]
    (default 14), the better of the min-fill and min-degree heuristics
    otherwise. *)
val decompose : ?exact_limit:int -> Hypergraph.t -> t

val pp : Format.formatter -> t -> unit
