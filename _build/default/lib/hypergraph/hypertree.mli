(** Hypertree decompositions with explicit guards (Definition 37).

    A hypertree decomposition extends a tree decomposition with a guard
    [Γ_t ⊆ E(H)] per node such that (iii) [B_t ⊆ ∪Γ_t] and (iv) the
    {e special condition}: [(∪Γ_t) ∩ (∪_{t' ∈ T_t} B_{t'}) ⊆ B_t]. Its
    width is the maximum guard cardinality; dropping (iv) gives
    {e generalized} hypertree decompositions, whose optimal width ghw
    satisfies [ghw ≤ hw ≤ 3·ghw + 1] (Adler–Gottlob–Grohe), which is why
    the width computations in {!Widths} work with ghw. This module makes
    guards and both validity notions first-class so the relationship can
    be checked and tested explicitly. *)

type t = {
  bags : Bitset.t array;
  parent : int array;          (* -1 for the root *)
  guards : Bitset.t list array; (* hyperedges of H, one list per node *)
}

(** Maximum guard cardinality (Definition 37's width). *)
val width : t -> int

(** Conditions (i)+(ii) (tree decomposition) and (iii) (guard covers
    bag); guards must be hyperedges of [h]. *)
val is_generalized : Hypergraph.t -> t -> bool

(** Condition (iv): for every node, the guard's vertices that occur in
    the subtree below already occur in the node's bag. *)
val satisfies_special_condition : t -> bool

(** All four conditions of Definition 37. *)
val is_valid : Hypergraph.t -> t -> bool

(** Equip a tree decomposition with minimum-cardinality guards (exact
    cover search for ≤ 20 candidate edges per bag, greedy beyond) —
    a generalized hypertree decomposition. Raises [Invalid_argument] if
    some bag cannot be covered by hyperedges. *)
val of_tree_decomposition : Hypergraph.t -> Tree_decomposition.t -> t

(** Best-effort hypertree decomposition of [h] via
    {!Tree_decomposition.decompose}; its width is an upper bound on
    ghw(H) (and within the 3·ghw+1 factor of hw(H)). *)
val of_hypergraph : ?exact_limit:int -> Hypergraph.t -> t

val pp : Format.formatter -> t -> unit
