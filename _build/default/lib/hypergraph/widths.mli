(** Hypergraph width measures (Definitions 32, 33, 37, 39, 41; Lemma 12).

    - [fcn]: fractional edge cover number of an induced sub-hypergraph, by
      linear programming (Definition 39).
    - [fhw_*]: fractional hypertreewidth — of a given decomposition, and
      exact for small hypergraphs via the monotone f-width subset DP.
    - [hw_*]: (integral) hypertreewidth surrogates — the edge-cover width
      of a decomposition (exact small / greedy), an upper bound on
      Definition 37's hw.
    - [adaptive_width_bounds]: certified interval [lo, hi] with
      lo ≤ aw(H) ≤ hi. The upper bound is fhw(H) (weak LP duality:
      μ(B) ≤ fcn(H[B]) for every fractional independent set μ), the lower
      bound maximises μ-width over a family of candidate fractional
      independent sets (LP-optimal, uniform, and per-vertex scaled ones).
      On bounded-arity families both collapse against treewidth as
      Observation 34 predicts. *)

(** [fcn h x] = fractional edge cover number of [H[X]], or [infinity] if a
    vertex of [x] lies in no hyperedge. Also returns the LP weights over
    [Hypergraph.induced_edges h x] (in that order). Computed by the exact
    rational simplex and converted at the boundary. *)
val fcn : Hypergraph.t -> Bitset.t -> float * float array

(** Exact rational fcn and cover weights; [None] when a vertex of [x] is
    uncoverable. *)
val fcn_rational :
  Hypergraph.t -> Bitset.t -> (Ac_lp.Rat.t * Ac_lp.Rat.t array) option

(** Minimum number of hyperedges needed to cover [x] (exact for up to 20
    candidate edges, greedy beyond); [max_int] if uncoverable. *)
val integral_cover_number : Hypergraph.t -> Bitset.t -> int

(** Max over bags of [fcn] (Definition 41 applied to a decomposition). *)
val fhw_of_decomposition : Hypergraph.t -> Tree_decomposition.t -> float

val fhw_of_nice : Hypergraph.t -> Nice_decomposition.t -> float

(** Exact fractional hypertreewidth for small hypergraphs (≤ 18 vertices)
    via the subset DP; returns the width and a witness decomposition. *)
val fhw_exact : Hypergraph.t -> float * Tree_decomposition.t

(** Heuristic fhw upper bound for larger hypergraphs: fcn-width of the
    min-fill decomposition. *)
val fhw_upper : Hypergraph.t -> float

(** Max over bags of the integral cover number (hypertreewidth-style width
    of this decomposition, an upper bound on hw(H)). *)
val hw_of_decomposition : Hypergraph.t -> Tree_decomposition.t -> int

(** Exact generalised hypertreewidth for small hypergraphs via the subset
    DP with integral cover cost; an upper bound for Definition 37's hw. *)
val ghw_exact : Hypergraph.t -> float

(** Maximum-weight fractional independent set (Definition 33): total
    weight and the weight vector. *)
val max_fractional_independent_set : Hypergraph.t -> float * float array

(** [mu_width h mu] = μ-width of [H] (Definition 32 with f = μ), exact for
    small hypergraphs. *)
val mu_width : Hypergraph.t -> float array -> float

(** Certified bounds [lo, hi] on adaptive width (see module docstring). *)
val adaptive_width_bounds : Hypergraph.t -> float * float

(** [is_fractional_independent_set h mu] checks Definition 33. *)
val is_fractional_independent_set : ?tolerance:float -> Hypergraph.t -> float array -> bool
