lib/hypergraph/tree_decomposition.ml: Array Bitset Float Format Fun Hashtbl Hypergraph List
