lib/hypergraph/widths.mli: Ac_lp Bitset Hypergraph Nice_decomposition Tree_decomposition
