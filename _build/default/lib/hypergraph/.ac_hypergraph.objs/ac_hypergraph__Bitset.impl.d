lib/hypergraph/bitset.ml: Array Format Hashtbl Int List Printf String
