lib/hypergraph/widths.ml: Ac_lp Array Bitset Float Hypergraph List Nice_decomposition Tree_decomposition
