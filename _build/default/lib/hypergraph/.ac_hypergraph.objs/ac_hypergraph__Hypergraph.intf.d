lib/hypergraph/hypergraph.mli: Bitset Format
