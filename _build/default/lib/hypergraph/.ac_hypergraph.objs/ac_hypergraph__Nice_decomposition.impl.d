lib/hypergraph/nice_decomposition.ml: Array Bitset Format Fun Hypergraph List Printf Tree_decomposition
