lib/hypergraph/hypertree.mli: Bitset Format Hypergraph Tree_decomposition
