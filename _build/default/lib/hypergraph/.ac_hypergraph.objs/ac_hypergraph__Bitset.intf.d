lib/hypergraph/bitset.mli: Format Hashtbl
