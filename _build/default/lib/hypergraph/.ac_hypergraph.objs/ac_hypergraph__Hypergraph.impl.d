lib/hypergraph/hypergraph.ml: Array Bitset Format List
