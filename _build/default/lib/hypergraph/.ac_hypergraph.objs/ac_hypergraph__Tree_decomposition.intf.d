lib/hypergraph/tree_decomposition.mli: Bitset Format Hypergraph
