lib/hypergraph/nice_decomposition.mli: Bitset Format Hypergraph Tree_decomposition
