lib/hypergraph/hypertree.ml: Array Bitset Format Fun Hypergraph List Tree_decomposition
