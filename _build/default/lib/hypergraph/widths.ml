(* The cover LP has 0/1 coefficients and unit bounds, so the exact
   rational simplex applies verbatim and certifies values like 3/2
   without float tolerances. [None] encodes an uncoverable vertex. *)
let fcn_rational h x =
  let edges = Hypergraph.induced_edges h x in
  let m = List.length edges in
  let vertices = Bitset.to_list x in
  if vertices = [] then Some (Ac_lp.Rat.zero, [||])
  else if
    List.exists
      (fun v -> not (List.exists (fun e -> Bitset.mem e v) edges))
      vertices
  then None
  else begin
    let edge_array = Array.of_list edges in
    let objective = Array.make m Ac_lp.Rat.one in
    let constraints =
      List.map
        (fun v ->
          let coeffs =
            Array.map
              (fun e -> if Bitset.mem e v then Ac_lp.Rat.one else Ac_lp.Rat.zero)
              edge_array
          in
          Ac_lp.Simplex_exact.constr coeffs Ac_lp.Simplex_exact.Ge Ac_lp.Rat.one)
        vertices
    in
    match Ac_lp.Simplex_exact.minimize ~num_vars:m ~objective constraints with
    | Ac_lp.Simplex_exact.Optimal { value; point } -> Some (value, point)
    | Ac_lp.Simplex_exact.Infeasible | Ac_lp.Simplex_exact.Unbounded ->
        (* cannot happen: γ ≡ 1 is feasible and the objective is ≥ 0 *)
        None
  end

let fcn h x =
  match fcn_rational h x with
  | None -> (infinity, [||])
  | Some (value, point) ->
      (Ac_lp.Rat.to_float value, Array.map Ac_lp.Rat.to_float point)

let integral_cover_number h x =
  if Bitset.is_empty x then 0
  else begin
    let edges =
      Hypergraph.edges h
      |> List.filter_map (fun e ->
             let e' = Bitset.inter e x in
             if Bitset.is_empty e' then None else Some e')
    in
    let edges =
      (* deduplicate; keep only maximal intersections *)
      let arr = List.sort_uniq Bitset.compare edges in
      List.filter
        (fun e -> not (List.exists (fun e' -> (not (Bitset.equal e e')) && Bitset.subset e e') arr))
        arr
    in
    let m = List.length edges in
    if m = 0 then max_int
    else if m <= 20 then begin
      (* exact branch and bound over subsets, smallest-first *)
      let arr = Array.of_list edges in
      let best = ref max_int in
      let rec search idx chosen covered =
        if Bitset.subset x covered then best := min !best chosen
        else if idx < m && chosen + 1 < !best then begin
          search (idx + 1) (chosen + 1) (Bitset.union covered arr.(idx));
          search (idx + 1) chosen covered
        end
      in
      search 0 0 (Bitset.create ~capacity:(Bitset.capacity x));
      if !best = max_int then max_int else !best
    end
    else begin
      (* greedy set cover *)
      let remaining = ref x and count = ref 0 in
      let continue_ = ref true in
      while (not (Bitset.is_empty !remaining)) && !continue_ do
        let best_edge = ref None and best_gain = ref 0 in
        List.iter
          (fun e ->
            let gain = Bitset.cardinal (Bitset.inter e !remaining) in
            if gain > !best_gain then begin
              best_gain := gain;
              best_edge := Some e
            end)
          edges;
        match !best_edge with
        | None -> continue_ := false
        | Some e ->
            remaining := Bitset.diff !remaining e;
            incr count
      done;
      if Bitset.is_empty !remaining then !count else max_int
    end
  end

let fhw_of_decomposition h (d : Tree_decomposition.t) =
  Array.fold_left (fun acc b -> Float.max acc (fst (fcn h b))) 0.0 d.bags

let fhw_of_nice h (d : Nice_decomposition.t) =
  Array.fold_left (fun acc b -> Float.max acc (fst (fcn h b))) 0.0 d.bags

let fhw_exact h =
  if Hypergraph.num_vertices h > 18 then invalid_arg "Widths.fhw_exact: too large";
  let cost b = fst (fcn h b) in
  let value, order = Tree_decomposition.exact_f_width h ~cost in
  (value, Tree_decomposition.of_elimination_order h order)

let fhw_upper h =
  let d = Tree_decomposition.of_elimination_order h (Tree_decomposition.min_fill_order h) in
  fhw_of_decomposition h d

let hw_of_decomposition h (d : Tree_decomposition.t) =
  Array.fold_left (fun acc b -> max acc (integral_cover_number h b)) 0 d.bags

let ghw_exact h =
  if Hypergraph.num_vertices h > 18 then invalid_arg "Widths.ghw_exact: too large";
  let cost b =
    let c = integral_cover_number h b in
    if c = max_int then infinity else float_of_int c
  in
  fst (Tree_decomposition.exact_f_width h ~cost)

let max_fractional_independent_set h =
  let n = Hypergraph.num_vertices h in
  if n = 0 then (0.0, [||])
  else begin
    let objective = Array.make n 1.0 in
    let edge_constraints =
      List.map
        (fun e ->
          let coeffs =
            Array.init n (fun v -> if Bitset.mem e v then 1.0 else 0.0)
          in
          Ac_lp.Simplex.constr coeffs Ac_lp.Simplex.Le 1.0)
        (Hypergraph.edges h)
    in
    let box_constraints =
      List.init n (fun v ->
          let coeffs = Array.make n 0.0 in
          coeffs.(v) <- 1.0;
          Ac_lp.Simplex.constr coeffs Ac_lp.Simplex.Le 1.0)
    in
    match
      Ac_lp.Simplex.maximize ~num_vars:n ~objective
        (edge_constraints @ box_constraints)
    with
    | Ac_lp.Simplex.Optimal { value; point } -> (value, point)
    | Ac_lp.Simplex.Infeasible | Ac_lp.Simplex.Unbounded -> (0.0, Array.make n 0.0)
  end

let is_fractional_independent_set ?(tolerance = 1e-6) h mu =
  Array.length mu = Hypergraph.num_vertices h
  && Array.for_all (fun w -> w >= -.tolerance && w <= 1.0 +. tolerance) mu
  && List.for_all
       (fun e ->
         Bitset.fold (fun v acc -> acc +. mu.(v)) e 0.0 <= 1.0 +. tolerance)
       (Hypergraph.edges h)

let mu_width h mu =
  if Hypergraph.num_vertices h > 18 then invalid_arg "Widths.mu_width: too large";
  let cost b = Bitset.fold (fun v acc -> acc +. mu.(v)) b 0.0 in
  fst (Tree_decomposition.exact_f_width h ~cost)

let adaptive_width_bounds h =
  let n = Hypergraph.num_vertices h in
  if n = 0 then (0.0, 0.0)
  else begin
    let upper = fst (fhw_exact h) in
    (* candidate fractional independent sets *)
    let arity = max 1 (Hypergraph.arity h) in
    let uniform = Array.make n (1.0 /. float_of_int arity) in
    let per_vertex =
      Array.init n (fun v ->
          match Hypergraph.incident h v with
          | [] -> 1.0
          | es ->
              let m =
                List.fold_left (fun acc e -> max acc (Bitset.cardinal e)) 1 es
              in
              1.0 /. float_of_int m)
    in
    let lp_opt = snd (max_fractional_independent_set h) in
    let candidates =
      List.filter (is_fractional_independent_set h) [ uniform; per_vertex; lp_opt ]
    in
    let lower =
      List.fold_left (fun acc mu -> Float.max acc (mu_width h mu)) 0.0 candidates
    in
    (Float.min lower upper, upper)
  end
