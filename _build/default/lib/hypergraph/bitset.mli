(** Fixed-capacity sets of small integers, packed into words.

    Used pervasively for bags of tree decompositions and for the
    subset dynamic programs computing exact widths. All binary operations
    require both operands to share the same capacity. Values are
    semantically immutable: every operation returns a fresh set. *)

type t

val create : capacity:int -> t
val capacity : t -> int
val of_list : capacity:int -> int list -> t
val to_list : t -> int list
val singleton : capacity:int -> int -> t
val full : capacity:int -> t

val mem : t -> int -> bool
val add : t -> int -> t
val remove : t -> int -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val cardinal : t -> int
val is_empty : t -> bool
val subset : t -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool
val choose : t -> int option
val pp : Format.formatter -> t -> unit

(** Hash table keyed by bitsets. *)
module Table : Hashtbl.S with type key = t
