type space = { class_sizes : int array }

let space class_sizes =
  if Array.length class_sizes = 0 then invalid_arg "Partite.space: no classes";
  Array.iter (fun s -> if s < 0 then invalid_arg "Partite.space: negative class") class_sizes;
  { class_sizes = Array.copy class_sizes }

let num_classes s = Array.length s.class_sizes
let num_vertices s = Array.fold_left ( + ) 0 s.class_sizes

type aligned = int array array

let all s = Array.map (fun n -> Array.init n Fun.id) s.class_sizes

let is_empty_part parts = Array.exists (fun p -> Array.length p = 0) parts

let tuple_count parts =
  Array.fold_left (fun acc p -> acc *. float_of_int (Array.length p)) 1.0 parts

type aligned_oracle = aligned -> bool

type general = (int * int) list array

(* All permutations of [0 .. n-1]. *)
let permutations n =
  let rec insert_everywhere x = function
    | [] -> [ [ x ] ]
    | y :: ys ->
        (x :: y :: ys)
        :: List.map (fun rest -> y :: rest) (insert_everywhere x ys)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: xs -> List.concat_map (insert_everywhere x) (perms xs)
  in
  perms (List.init n Fun.id)

let align s parts =
  let l = num_classes s in
  if Array.length parts <> l then invalid_arg "Partite.align: wrong part count";
  (* A hyperedge (one vertex per class) lies in H[W₁..W_ℓ] iff there is a
     bijection σ assigning its class-i vertex to part W_{σ(i)}; the
     aligned box for σ therefore restricts class i to W_{σ(i)} ∩ U_i. *)
  List.map
    (fun perm ->
      let perm = Array.of_list perm in
      Array.init l (fun i ->
          List.filter_map
            (fun (cls, local) -> if cls = i then Some local else None)
            parts.(perm.(i))
          |> List.sort_uniq Int.compare
          |> Array.of_list))
    (permutations l)

let general_of_aligned s oracle parts =
  List.for_all
    (fun aligned -> is_empty_part aligned || oracle aligned)
    (align s parts)

let with_counter oracle =
  let n = ref 0 in
  let wrapped parts =
    incr n;
    oracle parts
  in
  (wrapped, fun () -> !n)
