(** ℓ-partite vertex spaces and the colourful [EdgeFree] oracle interface
    (§2.1, Theorem 17).

    The hypergraph [H] whose edges we count is ℓ-partite with classes
    [U_1, .., U_ℓ]; class [i] has [class_sizes.(i)] vertices with local
    ids [0 .. class_sizes.(i) - 1]. An {e aligned} subset is a choice of
    [V_i ⊆ U_i] per class. A {e general} ℓ-partite subset (what
    Theorem 17's oracle receives) may mix classes: each part is a set of
    global vertices [(class, local)]. Since every hyperedge has exactly
    one vertex per class, a general query reduces to [ℓ!] aligned queries
    (the permutation step in the proof of Lemma 22) — {!align} performs
    that reduction. *)

type space = { class_sizes : int array }

val space : int array -> space
val num_classes : space -> int

(** Total number of vertices [Σ |U_i|]. *)
val num_vertices : space -> int

(** Aligned subset: [parts.(i)] is the sorted list of kept local ids of
    class [i]. *)
type aligned = int array array

(** Whole space as an aligned subset. *)
val all : space -> aligned

val is_empty_part : aligned -> bool

(** Number of tuples [∏ |V_i|] as a float (may be huge). *)
val tuple_count : aligned -> float

(** [EdgeFree] over aligned subsets: [true] iff [H[V_1, .., V_ℓ]] has no
    hyperedge. *)
type aligned_oracle = aligned -> bool

(** General ℓ-partite subset over global vertices. *)
type general = (int * int) list array

(** [align space parts] enumerates the aligned restrictions
    [V_i = W_i ∩ U_{π(i)}] over all permutations [π] (proof of Lemma 22):
    the general query has an edge iff some aligned one does. *)
val align : space -> general -> aligned list

(** [general_of_aligned oracle] wraps an aligned oracle into a general one
    using {!align}. *)
val general_of_aligned : space -> aligned_oracle -> general -> bool

(** Wraps an oracle, counting invocations. *)
val with_counter : aligned_oracle -> aligned_oracle * (unit -> int)
