lib/dlm/edge_count.mli: Partite Random
