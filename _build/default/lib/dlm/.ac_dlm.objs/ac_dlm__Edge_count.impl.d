lib/dlm/edge_count.ml: Array Float List Partite Random
