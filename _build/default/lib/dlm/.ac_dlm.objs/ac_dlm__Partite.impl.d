lib/dlm/partite.ml: Array Fun Int List
