lib/dlm/partite.mli:
