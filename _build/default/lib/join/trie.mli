(** Hash tries over relations, the index structure behind the generic
    worst-case-optimal join.

    A trie fixes an order of the (distinct) variables of an atom's scope
    and stores the relation's tuples level by level in that order.
    Repeated variables in a scope are checked during construction
    (tuples with unequal components at repeated positions are dropped)
    and collapsed to a single level. *)

type t

(** [build relation ~positions] indexes [relation] by the tuple positions
    [positions] (distinct, in the desired level order; must cover a subset
    of [0 .. arity-1]). Tuples are first filtered with [keep]. *)
val build : ?keep:(Ac_relational.Tuple.t -> bool) -> Ac_relational.Relation.t -> positions:int array -> t

(** Number of levels. *)
val depth : t -> int

(** [child t v] descends one level along value [v]. *)
val child : t -> int -> t option

(** Values available at the current level, unordered. [Invalid_argument]
    below depth 1. *)
val keys : t -> int list

val num_keys : t -> int
val mem_key : t -> int -> bool

(** Number of tuples below this node. *)
val weight : t -> int
