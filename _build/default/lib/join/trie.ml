module Relation = Ac_relational.Relation

type t =
  | Leaf of int                       (* number of tuples that end here *)
  | Node of { total : int; children : (int, t) Hashtbl.t }

let depth t =
  let rec go acc = function
    | Leaf _ -> acc
    | Node { children; _ } ->
        if Hashtbl.length children = 0 then acc
        else
          let sample = Hashtbl.fold (fun _ c _ -> Some c) children None in
          (match sample with None -> acc | Some c -> go (acc + 1) c)
  in
  go 0 t

let weight = function Leaf n -> n | Node { total; _ } -> total

let child t v =
  match t with
  | Leaf _ -> invalid_arg "Trie.child: at a leaf"
  | Node { children; _ } -> Hashtbl.find_opt children v

let keys = function
  | Leaf _ -> invalid_arg "Trie.keys: at a leaf"
  | Node { children; _ } -> Hashtbl.fold (fun k _ acc -> k :: acc) children []

let num_keys = function
  | Leaf _ -> invalid_arg "Trie.num_keys: at a leaf"
  | Node { children; _ } -> Hashtbl.length children

let mem_key t v =
  match t with
  | Leaf _ -> invalid_arg "Trie.mem_key: at a leaf"
  | Node { children; _ } -> Hashtbl.mem children v

let build ?(keep = fun _ -> true) relation ~positions =
  let levels = Array.length positions in
  (* nested mutable construction, converted on the fly *)
  let rec insert node tuple level =
    match node with
    | Leaf n ->
        assert (level = levels);
        Leaf (n + 1)
    | Node { total; children } ->
        let key = tuple.(positions.(level)) in
        let sub =
          match Hashtbl.find_opt children key with
          | Some s -> s
          | None ->
              if level + 1 = levels then Leaf 0
              else Node { total = 0; children = Hashtbl.create 4 }
        in
        let sub = insert sub tuple (level + 1) in
        Hashtbl.replace children key sub;
        Node { total = total + 1; children }
  in
  let root =
    if levels = 0 then Leaf 0 else Node { total = 0; children = Hashtbl.create 16 }
  in
  Relation.fold
    (fun tuple acc -> if keep tuple then insert acc tuple 0 else acc)
    relation root
