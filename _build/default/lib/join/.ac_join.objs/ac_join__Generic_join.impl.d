lib/join/generic_join.ml: Ac_relational Array Fun Hashtbl Int List Option Trie
