lib/join/generic_join.mli: Ac_relational
