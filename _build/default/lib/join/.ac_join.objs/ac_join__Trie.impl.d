lib/join/trie.ml: Ac_relational Array Hashtbl
