lib/join/trie.mli: Ac_relational
