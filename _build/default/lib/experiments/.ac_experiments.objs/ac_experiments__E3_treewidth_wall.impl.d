lib/experiments/e3_treewidth_wall.ml: Ac_workload Approxcount Common List
