lib/experiments/e5_dcq_adaptive.ml: Ac_hypergraph Ac_query Ac_workload Approxcount Common List
