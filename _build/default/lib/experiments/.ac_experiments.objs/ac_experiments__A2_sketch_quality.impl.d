lib/experiments/a2_sketch_quality.ml: Ac_automata Ac_workload Approxcount Common Float List Random
