lib/experiments/e1_fptras_ecq.ml: Ac_workload Approxcount Common List Printf
