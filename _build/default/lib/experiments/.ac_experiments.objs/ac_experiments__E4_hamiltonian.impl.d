lib/experiments/e4_hamiltonian.ml: Ac_workload Approxcount Common List Random
