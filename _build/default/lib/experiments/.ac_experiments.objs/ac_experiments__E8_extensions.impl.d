lib/experiments/e8_extensions.ml: Ac_automata Ac_query Ac_relational Ac_workload Approxcount Array Common List
