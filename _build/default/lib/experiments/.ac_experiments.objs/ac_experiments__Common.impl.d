lib/experiments/common.ml: Array Char Float Format List Printf Random Seq String Unix
