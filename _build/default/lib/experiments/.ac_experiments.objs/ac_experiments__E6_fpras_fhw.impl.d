lib/experiments/e6_fpras_fhw.ml: Ac_automata Ac_workload Approxcount Common List Printf Random
