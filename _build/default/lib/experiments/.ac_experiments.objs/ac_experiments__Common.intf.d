lib/experiments/common.mli: Format Random
