lib/experiments/e2_lihom.ml: Ac_workload Approxcount Common List Printf
