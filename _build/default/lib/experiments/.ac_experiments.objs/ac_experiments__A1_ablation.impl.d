lib/experiments/a1_ablation.ml: Ac_workload Approxcount Common List Random
