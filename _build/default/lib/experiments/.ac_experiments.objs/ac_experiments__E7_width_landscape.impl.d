lib/experiments/e7_width_landscape.ml: Ac_hypergraph Ac_query Ac_workload Common List Printf
