lib/query/ecq.mli: Ac_hypergraph Ac_relational Format
