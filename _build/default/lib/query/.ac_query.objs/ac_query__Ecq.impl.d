lib/query/ecq.ml: Ac_hypergraph Ac_relational Array Format Fun Hashtbl List Printf String
