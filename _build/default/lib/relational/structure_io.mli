(** Plain-text serialisation of structures/databases.

    Format (one item per line, [#] comments and blank lines ignored):

    {v
    # people and friendships
    universe 6
    F 0 1
    F 1 0
    P 3
    v}

    The first non-comment line must be [universe <n>]. A line
    [relation <name> <arity>] declares a (possibly empty) relation; any
    other line is a fact [<name> <v_1> .. <v_k>], implicitly declaring the
    symbol with the fact's length as arity. *)

val of_string : string -> Structure.t

(** Raises [Failure] with a line-numbered message on malformed input. *)
val load : string -> Structure.t

val to_string : Structure.t -> string
val save : string -> Structure.t -> unit
