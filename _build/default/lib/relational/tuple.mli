(** Tuples of universe elements.

    Universe elements are represented as dense non-negative integers
    [0 .. n-1]; a tuple is an immutable-by-convention [int array]. The
    module provides the hashing/equality used by relation hash tables and
    by trie indexes. *)

type t = int array

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Hash table keyed by tuples. *)
module Table : Hashtbl.S with type key = t
