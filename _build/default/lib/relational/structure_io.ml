let of_string text =
  let lines = String.split_on_char '\n' text in
  let structure = ref None in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let fail msg = failwith (Printf.sprintf "line %d: %s" lineno msg) in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let tokens =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun t -> t <> "")
      in
      match (tokens, !structure) with
      | [], _ -> ()
      | [ "universe"; n ], None -> (
          match int_of_string_opt n with
          | Some n when n >= 0 -> structure := Some (Structure.create ~universe_size:n)
          | _ -> fail "invalid universe size")
      | [ "universe"; _ ], Some _ -> fail "duplicate universe declaration"
      | [ "relation"; name; arity ], Some s -> (
          match int_of_string_opt arity with
          | Some a when a >= 1 -> (
              match Structure.declare s name ~arity:a with
              | () -> ()
              | exception Invalid_argument msg -> fail msg)
          | _ -> fail "invalid relation arity")
      | _, None -> fail "expected `universe <n>` first"
      | name :: args, Some s -> (
          let values =
            List.map
              (fun a ->
                match int_of_string_opt a with
                | Some v -> v
                | None -> fail (Printf.sprintf "invalid element %S" a))
              args
          in
          if values = [] then fail "facts need at least one element";
          match Structure.add_fact s name (Array.of_list values) with
          | () -> ()
          | exception Invalid_argument msg -> fail msg))
    lines;
  match !structure with
  | Some s -> s
  | None -> failwith "empty database file (missing `universe <n>`)"

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  of_string content

let to_string s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "universe %d\n" (Structure.universe_size s));
  List.iter
    (fun name ->
      Buffer.add_string buf
        (Printf.sprintf "relation %s %d\n" name (Structure.arity_of s name)))
    (Structure.symbols s);
  List.iter
    (fun name ->
      let tuples =
        Relation.to_list (Structure.relation s name) |> List.sort Tuple.compare
      in
      List.iter
        (fun tuple ->
          Buffer.add_string buf name;
          Array.iter (fun v -> Buffer.add_string buf (" " ^ string_of_int v)) tuple;
          Buffer.add_char buf '\n')
        tuples)
    (Structure.symbols s);
  Buffer.contents buf

let save path s =
  let oc = open_out path in
  output_string oc (to_string s);
  close_out oc
