lib/relational/relation.ml: Array Format List String Tuple
