lib/relational/structure_io.ml: Array Buffer List Printf Relation String Structure Tuple
