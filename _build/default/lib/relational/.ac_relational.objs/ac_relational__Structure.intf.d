lib/relational/structure.mli: Format Relation Tuple
