lib/relational/structure_io.mli: Structure
