lib/relational/structure.ml: Array Format Hashtbl Int List Printf Relation String
