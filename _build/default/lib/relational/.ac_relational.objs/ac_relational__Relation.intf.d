lib/relational/relation.mli: Format Tuple
