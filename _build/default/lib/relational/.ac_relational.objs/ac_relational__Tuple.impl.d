lib/relational/tuple.ml: Array Format Hashtbl Int String
