lib/relational/tuple.mli: Format Hashtbl
