(** Finite relations over an integer universe.

    A relation is a set of equal-length tuples. Mutation (adding tuples) is
    only expected during database construction; all query-time operations
    treat relations as immutable. *)

type t

val create : arity:int -> t
val arity : t -> int
val cardinality : t -> int

(** [add rel tuple] inserts [tuple]; duplicates are ignored. Raises
    [Invalid_argument] if the tuple length differs from the arity. *)
val add : t -> Tuple.t -> unit

val mem : t -> Tuple.t -> bool
val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> Tuple.t list

val of_list : arity:int -> Tuple.t list -> t
val copy : t -> t
val is_empty : t -> bool

(** [complement ~universe_size rel] is the relation
    [U^arity \ rel] — the explicit negated relation [R̄] used when a
    negated predicate is turned into a positive one (Definition 20).
    The result has [universe_size ^ arity - cardinality rel] tuples, so
    callers must keep arities small, exactly as the paper's
    Observation 21 cost analysis assumes. *)
val complement : universe_size:int -> t -> t

(** [universal ~universe_size ~arity] is [U^arity]. *)
val universal : universe_size:int -> arity:int -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
