type t = int array

let equal (a : t) (b : t) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i >= la then 0
      else
        let c = Int.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

(* FNV-1a over the components; cheap and adequate for dense ints. *)
let hash (a : t) =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length a - 1 do
    h := (!h lxor a.(i)) * 0x01000193 land max_int
  done;
  !h

let to_string t =
  "("
  ^ String.concat "," (Array.to_list (Array.map string_of_int t))
  ^ ")"

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
