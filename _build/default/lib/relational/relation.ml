type t = { arity : int; tuples : unit Tuple.Table.t }

let create ~arity =
  if arity < 1 then invalid_arg "Relation.create: arity must be positive";
  { arity; tuples = Tuple.Table.create 64 }

let arity r = r.arity
let cardinality r = Tuple.Table.length r.tuples

let add r tuple =
  if Array.length tuple <> r.arity then
    invalid_arg "Relation.add: tuple length does not match arity";
  if not (Tuple.Table.mem r.tuples tuple) then
    Tuple.Table.replace r.tuples tuple ()

let mem r tuple = Tuple.Table.mem r.tuples tuple
let iter f r = Tuple.Table.iter (fun t () -> f t) r.tuples
let fold f r init = Tuple.Table.fold (fun t () acc -> f t acc) r.tuples init
let to_list r = fold (fun t acc -> t :: acc) r []

let of_list ~arity tuples =
  let r = create ~arity in
  List.iter (add r) tuples;
  r

let copy r = { arity = r.arity; tuples = Tuple.Table.copy r.tuples }
let is_empty r = cardinality r = 0

(* Enumerate U^arity in lexicographic order, applying [f] to a fresh copy
   of each tuple. *)
let iter_universal ~universe_size ~arity f =
  if universe_size > 0 then begin
    let cursor = Array.make arity 0 in
    let rec bump i =
      if i >= 0 then begin
        cursor.(i) <- cursor.(i) + 1;
        if cursor.(i) = universe_size then begin
          cursor.(i) <- 0;
          bump (i - 1)
        end
      end
    in
    let total =
      let rec pow acc n = if n = 0 then acc else pow (acc * universe_size) (n - 1) in
      pow 1 arity
    in
    for _ = 1 to total do
      f (Array.copy cursor);
      bump (arity - 1)
    done
  end

let universal ~universe_size ~arity =
  let r = create ~arity in
  iter_universal ~universe_size ~arity (add r);
  r

let complement ~universe_size r =
  let out = create ~arity:r.arity in
  iter_universal ~universe_size ~arity:r.arity (fun t ->
      if not (mem r t) then add out t);
  out

let equal a b =
  a.arity = b.arity
  && cardinality a = cardinality b
  && fold (fun t acc -> acc && mem b t) a true

let pp fmt r =
  let tuples = List.sort Tuple.compare (to_list r) in
  Format.fprintf fmt "{%s}"
    (String.concat "; " (List.map Tuple.to_string tuples))
