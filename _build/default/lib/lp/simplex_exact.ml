type relation = Le | Ge | Eq

type constr = {
  coeffs : Rat.t array;
  relation : relation;
  bound : Rat.t;
}

type outcome =
  | Optimal of { value : Rat.t; point : Rat.t array }
  | Infeasible
  | Unbounded

let constr coeffs relation bound = { coeffs; relation; bound }

type tableau = {
  rows : Rat.t array array;
  mutable basis : int array;
  total_cols : int;
}

let rhs_index t = t.total_cols

let pivot t ~row ~col =
  let r = t.rows.(row) in
  let p = r.(col) in
  for j = 0 to t.total_cols do
    r.(j) <- Rat.div r.(j) p
  done;
  Array.iteri
    (fun i r' ->
      if i <> row then begin
        let f = r'.(col) in
        if Rat.sign f <> 0 then
          for j = 0 to t.total_cols do
            r'.(j) <- Rat.sub r'.(j) (Rat.mul f r.(j))
          done
      end)
    t.rows;
  t.basis.(row) <- col

(* Minimise [obj . x] from the current basis; Bland's rule (smallest
   eligible column / smallest basis row on ties) guarantees termination
   with exact arithmetic. Returns the reduced objective row, or [None]
   when unbounded below. *)
let run_simplex t ~obj ~allowed =
  let m = Array.length t.rows in
  let z = Array.make (t.total_cols + 1) Rat.zero in
  Array.blit obj 0 z 0 t.total_cols;
  for i = 0 to m - 1 do
    let c = z.(t.basis.(i)) in
    if Rat.sign c <> 0 then
      for j = 0 to t.total_cols do
        z.(j) <- Rat.sub z.(j) (Rat.mul c t.rows.(i).(j))
      done
  done;
  let rec loop () =
    (* entering: first column with negative reduced cost (Bland) *)
    let entering = ref (-1) in
    (try
       for j = 0 to t.total_cols - 1 do
         if allowed.(j) && Rat.sign z.(j) < 0 then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then Some z
    else begin
      let col = !entering in
      let row = ref (-1) in
      let best_ratio = ref Rat.zero in
      for i = 0 to m - 1 do
        let a = t.rows.(i).(col) in
        if Rat.sign a > 0 then begin
          let ratio = Rat.div t.rows.(i).(rhs_index t) a in
          if
            !row < 0
            || Rat.compare ratio !best_ratio < 0
            || (Rat.equal ratio !best_ratio && t.basis.(i) < t.basis.(!row))
          then begin
            row := i;
            best_ratio := ratio
          end
        end
      done;
      if !row < 0 then None
      else begin
        pivot t ~row:!row ~col;
        let f = z.(col) in
        if Rat.sign f <> 0 then begin
          let r = t.rows.(!row) in
          for j = 0 to t.total_cols do
            z.(j) <- Rat.sub z.(j) (Rat.mul f r.(j))
          done
        end;
        loop ()
      end
    end
  in
  loop ()

let check constraints point =
  let sat c =
    let lhs = ref Rat.zero in
    Array.iteri (fun i a -> lhs := Rat.add !lhs (Rat.mul a point.(i))) c.coeffs;
    match c.relation with
    | Le -> Rat.compare !lhs c.bound <= 0
    | Ge -> Rat.compare !lhs c.bound >= 0
    | Eq -> Rat.equal !lhs c.bound
  in
  Array.for_all (fun v -> Rat.sign v >= 0) point && List.for_all sat constraints

let maximize ~num_vars ~objective constraints =
  if Array.length objective <> num_vars then
    invalid_arg "Simplex_exact.maximize: objective dimension";
  List.iter
    (fun c ->
      if Array.length c.coeffs <> num_vars then
        invalid_arg "Simplex_exact.maximize: constraint dimension")
    constraints;
  let constraints = Array.of_list constraints in
  let m = Array.length constraints in
  let normalised =
    Array.map
      (fun c ->
        if Rat.sign c.bound < 0 then
          {
            coeffs = Array.map Rat.neg c.coeffs;
            bound = Rat.neg c.bound;
            relation = (match c.relation with Le -> Ge | Ge -> Le | Eq -> Eq);
          }
        else c)
      constraints
  in
  let num_slack =
    Array.fold_left
      (fun acc c -> match c.relation with Eq -> acc | Le | Ge -> acc + 1)
      0 normalised
  in
  let needs_artificial c = match c.relation with Le -> false | Ge | Eq -> true in
  let num_artificial =
    Array.fold_left (fun acc c -> acc + if needs_artificial c then 1 else 0) 0 normalised
  in
  let total_cols = num_vars + num_slack + num_artificial in
  let rows = Array.init m (fun _ -> Array.make (total_cols + 1) Rat.zero) in
  let basis = Array.make m (-1) in
  let slack_cursor = ref num_vars in
  let artificial_cursor = ref (num_vars + num_slack) in
  let artificial_cols = ref [] in
  Array.iteri
    (fun i c ->
      Array.blit c.coeffs 0 rows.(i) 0 num_vars;
      rows.(i).(total_cols) <- c.bound;
      (match c.relation with
      | Le ->
          let s = !slack_cursor in
          incr slack_cursor;
          rows.(i).(s) <- Rat.one;
          basis.(i) <- s
      | Ge ->
          let s = !slack_cursor in
          incr slack_cursor;
          rows.(i).(s) <- Rat.neg Rat.one
      | Eq -> ());
      if needs_artificial c then begin
        let a = !artificial_cursor in
        incr artificial_cursor;
        rows.(i).(a) <- Rat.one;
        basis.(i) <- a;
        artificial_cols := a :: !artificial_cols
      end)
    normalised;
  let t = { rows; basis; total_cols } in
  let artificial_set = Array.make total_cols false in
  List.iter (fun a -> artificial_set.(a) <- true) !artificial_cols;
  let infeasible = ref false in
  if num_artificial > 0 then begin
    let obj1 = Array.make total_cols Rat.zero in
    List.iter (fun a -> obj1.(a) <- Rat.one) !artificial_cols;
    match run_simplex t ~obj:obj1 ~allowed:(Array.make total_cols true) with
    | None -> infeasible := true
    | Some z ->
        if Rat.sign z.(rhs_index t) <> 0 then infeasible := true
        else
          Array.iteri
            (fun i b ->
              if artificial_set.(b) then begin
                let found = ref false in
                let j = ref 0 in
                while (not !found) && !j < num_vars + num_slack do
                  if Rat.sign t.rows.(i).(!j) <> 0 then begin
                    pivot t ~row:i ~col:!j;
                    found := true
                  end;
                  incr j
                done
              end)
            t.basis
  end;
  if !infeasible then Infeasible
  else begin
    let allowed = Array.make total_cols true in
    List.iter (fun a -> allowed.(a) <- false) !artificial_cols;
    let obj2 = Array.make total_cols Rat.zero in
    Array.iteri (fun j c -> obj2.(j) <- Rat.neg c) objective;
    match run_simplex t ~obj:obj2 ~allowed with
    | None -> Unbounded
    | Some z ->
        let point = Array.make num_vars Rat.zero in
        Array.iteri
          (fun i b -> if b < num_vars then point.(b) <- t.rows.(i).(rhs_index t))
          t.basis;
        Optimal { value = z.(rhs_index t); point }
  end

let minimize ~num_vars ~objective constraints =
  match maximize ~num_vars ~objective:(Array.map Rat.neg objective) constraints with
  | Optimal { value; point } -> Optimal { value = Rat.neg value; point }
  | (Infeasible | Unbounded) as other -> other
