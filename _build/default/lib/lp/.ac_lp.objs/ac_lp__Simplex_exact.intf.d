lib/lp/simplex_exact.mli: Rat
