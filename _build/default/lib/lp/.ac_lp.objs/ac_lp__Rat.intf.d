lib/lp/rat.mli: Format
