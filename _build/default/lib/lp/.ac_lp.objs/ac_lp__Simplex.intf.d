lib/lp/simplex.mli:
