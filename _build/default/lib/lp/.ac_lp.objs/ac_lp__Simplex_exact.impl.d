lib/lp/simplex_exact.ml: Array List Rat
