lib/lp/rat.ml: Format Printf Stdlib
