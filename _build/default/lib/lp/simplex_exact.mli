(** Exact two-phase simplex over rationals.

    Same problem shape as {!Simplex} but with {!Rat} coefficients and
    exact pivoting (Bland's rule throughout — with exact arithmetic it
    both terminates and needs no tolerances). Used by the width-measure
    computations to certify values like [fcn = 3/2] exactly; the float
    solver remains for large/ad-hoc problems.

    Kept separate from the float solver on purpose: they differ exactly
    where it matters — tolerance logic in entering/ratio tests — and a
    shared functor would have to abstract that difference away. *)

type relation = Le | Ge | Eq

type constr = {
  coeffs : Rat.t array;
  relation : relation;
  bound : Rat.t;
}

type outcome =
  | Optimal of { value : Rat.t; point : Rat.t array }
  | Infeasible
  | Unbounded

val constr : Rat.t array -> relation -> Rat.t -> constr

val maximize : num_vars:int -> objective:Rat.t array -> constr list -> outcome
val minimize : num_vars:int -> objective:Rat.t array -> constr list -> outcome

(** Exact feasibility check of a point. *)
val check : constr list -> Rat.t array -> bool
