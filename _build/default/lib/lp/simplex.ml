type relation = Le | Ge | Eq

type constr = {
  coeffs : float array;
  relation : relation;
  bound : float;
}

type outcome =
  | Optimal of { value : float; point : float array }
  | Infeasible
  | Unbounded

let epsilon = 1e-9

let constr coeffs relation bound = { coeffs; relation; bound }

(* The tableau layout is the classic one: [m] constraint rows over columns
   [0 .. total_cols - 1] plus a right-hand-side column, and one objective
   row. Column blocks: original variables, then slack/surplus variables,
   then artificial variables. Rows are normalised so that every right-hand
   side is non-negative before artificials are introduced, which makes the
   all-artificial (plus non-negated slacks) basis feasible for phase 1. *)

type tableau = {
  rows : float array array;   (* m rows, each of length total_cols + 1 *)
  mutable basis : int array;  (* basis.(i) = column basic in row i *)
  total_cols : int;
}

let rhs_index t = t.total_cols

let pivot t ~row ~col =
  let r = t.rows.(row) in
  let p = r.(col) in
  for j = 0 to t.total_cols do
    r.(j) <- r.(j) /. p
  done;
  Array.iteri
    (fun i r' ->
      if i <> row then begin
        let f = r'.(col) in
        if Float.abs f > 0.0 then
          for j = 0 to t.total_cols do
            r'.(j) <- r'.(j) -. (f *. r.(j))
          done
      end)
    t.rows;
  t.basis.(row) <- col

(* Minimise [obj . x] over the tableau's feasible region, starting from the
   current basis. [obj] has an entry per column (artificials included).
   Returns the reduced objective row so callers can read the optimum, or
   [None] when the problem is unbounded below. Dantzig's rule with a Bland
   fallback after a safety threshold guards against cycling. *)
let run_simplex t ~obj ~allowed =
  let m = Array.length t.rows in
  let z = Array.make (t.total_cols + 1) 0.0 in
  Array.blit obj 0 z 0 t.total_cols;
  (* Express the objective in terms of non-basic variables. *)
  for i = 0 to m - 1 do
    let c = z.(t.basis.(i)) in
    if Float.abs c > 0.0 then
      for j = 0 to t.total_cols do
        z.(j) <- z.(j) -. (c *. t.rows.(i).(j))
      done
  done;
  let max_iterations = 200 * (m + t.total_cols + 16) in
  let bland_threshold = max_iterations / 2 in
  let rec loop iter =
    if iter > max_iterations then None
    else begin
      (* Entering column: most negative reduced cost (Dantzig), or first
         negative (Bland) once we suspect cycling. *)
      let entering = ref (-1) in
      let best = ref (-.epsilon) in
      (try
         for j = 0 to t.total_cols - 1 do
           if allowed.(j) && z.(j) < !best then begin
             entering := j;
             best := z.(j);
             if iter > bland_threshold then raise Exit
           end
         done
       with Exit -> ());
      if !entering < 0 then Some z
      else begin
        let col = !entering in
        (* Ratio test; Bland-style tie-break on basis column index. *)
        let row = ref (-1) in
        let best_ratio = ref infinity in
        for i = 0 to m - 1 do
          let a = t.rows.(i).(col) in
          if a > epsilon then begin
            let ratio = t.rows.(i).(rhs_index t) /. a in
            if
              ratio < !best_ratio -. epsilon
              || (ratio < !best_ratio +. epsilon
                  && !row >= 0
                  && t.basis.(i) < t.basis.(!row))
            then begin
              row := i;
              best_ratio := ratio
            end
          end
        done;
        if !row < 0 then None
        else begin
          pivot t ~row:!row ~col;
          (* Update the reduced-cost row for the pivot. *)
          let f = z.(col) in
          if Float.abs f > 0.0 then begin
            let r = t.rows.(!row) in
            for j = 0 to t.total_cols do
              z.(j) <- z.(j) -. (f *. r.(j))
            done
          end;
          loop (iter + 1)
        end
      end
    end
  in
  loop 0

let check ?(tolerance = 1e-6) constraints point =
  let sat c =
    let lhs = ref 0.0 in
    Array.iteri (fun i a -> lhs := !lhs +. (a *. point.(i))) c.coeffs;
    match c.relation with
    | Le -> !lhs <= c.bound +. tolerance
    | Ge -> !lhs >= c.bound -. tolerance
    | Eq -> Float.abs (!lhs -. c.bound) <= tolerance
  in
  Array.for_all (fun v -> v >= -.tolerance) point
  && List.for_all sat constraints

let maximize ~num_vars ~objective constraints =
  if Array.length objective <> num_vars then
    invalid_arg "Simplex.maximize: objective dimension";
  List.iter
    (fun c ->
      if Array.length c.coeffs <> num_vars then
        invalid_arg "Simplex.maximize: constraint dimension")
    constraints;
  let constraints = Array.of_list constraints in
  let m = Array.length constraints in
  (* Normalise rows to non-negative right-hand sides, flipping relations. *)
  let normalised =
    Array.map
      (fun c ->
        if c.bound < 0.0 then
          {
            coeffs = Array.map (fun a -> -.a) c.coeffs;
            bound = -.c.bound;
            relation =
              (match c.relation with Le -> Ge | Ge -> Le | Eq -> Eq);
          }
        else c)
      constraints
  in
  let num_slack =
    Array.fold_left
      (fun acc c -> match c.relation with Eq -> acc | Le | Ge -> acc + 1)
      0 normalised
  in
  let needs_artificial c = match c.relation with Le -> false | Ge | Eq -> true in
  let num_artificial =
    Array.fold_left (fun acc c -> acc + if needs_artificial c then 1 else 0) 0 normalised
  in
  let total_cols = num_vars + num_slack + num_artificial in
  let rows = Array.make_matrix m (total_cols + 1) 0.0 in
  let basis = Array.make m (-1) in
  let slack_cursor = ref num_vars in
  let artificial_cursor = ref (num_vars + num_slack) in
  let artificial_cols = ref [] in
  Array.iteri
    (fun i c ->
      Array.blit c.coeffs 0 rows.(i) 0 num_vars;
      rows.(i).(total_cols) <- c.bound;
      (match c.relation with
      | Le ->
          let s = !slack_cursor in
          incr slack_cursor;
          rows.(i).(s) <- 1.0;
          basis.(i) <- s
      | Ge ->
          let s = !slack_cursor in
          incr slack_cursor;
          rows.(i).(s) <- -1.0
      | Eq -> ());
      if needs_artificial c then begin
        let a = !artificial_cursor in
        incr artificial_cursor;
        rows.(i).(a) <- 1.0;
        basis.(i) <- a;
        artificial_cols := a :: !artificial_cols
      end)
    normalised;
  let t = { rows; basis; total_cols } in
  let artificial_set = Array.make total_cols false in
  List.iter (fun a -> artificial_set.(a) <- true) !artificial_cols;
  let allowed_phase1 = Array.make total_cols true in
  let phase1_needed = num_artificial > 0 in
  let infeasible = ref false in
  if phase1_needed then begin
    let obj1 = Array.make total_cols 0.0 in
    List.iter (fun a -> obj1.(a) <- 1.0) !artificial_cols;
    match run_simplex t ~obj:obj1 ~allowed:allowed_phase1 with
    | None -> infeasible := true (* phase 1 is bounded; safety net *)
    | Some z ->
        if Float.abs z.(rhs_index t) > 1e-6 then infeasible := true
        else
          (* Drive any remaining artificial out of the basis. *)
          Array.iteri
            (fun i b ->
              if artificial_set.(b) then begin
                let found = ref false in
                let j = ref 0 in
                while (not !found) && !j < num_vars + num_slack do
                  if Float.abs t.rows.(i).(!j) > epsilon then begin
                    pivot t ~row:i ~col:!j;
                    found := true
                  end;
                  incr j
                done
                (* If no pivot exists the row is redundant (all zeros);
                   leaving the zero-valued artificial basic is harmless
                   because its column is disallowed in phase 2. *)
              end)
            t.basis
  end;
  if !infeasible then Infeasible
  else begin
    let allowed_phase2 = Array.make total_cols true in
    List.iter (fun a -> allowed_phase2.(a) <- false) !artificial_cols;
    let obj2 = Array.make total_cols 0.0 in
    (* run_simplex minimises, so negate to maximise. *)
    Array.iteri (fun j c -> obj2.(j) <- -.c) objective;
    match run_simplex t ~obj:obj2 ~allowed:allowed_phase2 with
    | None -> Unbounded
    | Some z ->
        let point = Array.make num_vars 0.0 in
        Array.iteri
          (fun i b -> if b < num_vars then point.(b) <- t.rows.(i).(rhs_index t))
          t.basis;
        (* The reduced objective row keeps [-(current value of obj2 . x)] in
           its right-hand cell; since obj2 = -objective, the maximum of the
           original objective is exactly that cell. *)
        Optimal { value = z.(rhs_index t); point }
  end

let minimize ~num_vars ~objective constraints =
  let negated = Array.map (fun c -> -.c) objective in
  match maximize ~num_vars ~objective:negated constraints with
  | Optimal { value; point } -> Optimal { value = -.value; point }
  | (Infeasible | Unbounded) as other -> other
