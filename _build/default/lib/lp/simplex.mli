(** Dense two-phase primal simplex.

    This is the linear-programming substrate used by the width-measure
    computations of the hypergraph library: fractional edge covers
    (Definition 39 of the paper), fractional hypertreewidth bag costs
    (Definition 41) and fractional independent sets witnessing adaptive
    width (Definition 33).

    Problems are stated over [n] non-negative variables. The solver
    maximises the objective; use {!minimize} for minimisation. Numerics are
    double precision with an explicit tolerance; {!check} re-verifies a
    solution against the original constraints. *)

(** Relation of a linear constraint [coeffs . x REL bound]. *)
type relation = Le | Ge | Eq

type constr = {
  coeffs : float array;  (** length = number of variables *)
  relation : relation;
  bound : float;
}

type outcome =
  | Optimal of { value : float; point : float array }
  | Infeasible
  | Unbounded

val constr : float array -> relation -> float -> constr

(** [maximize ~num_vars ~objective constraints] solves
    [max objective . x] subject to [constraints] and [x >= 0]. Raises
    [Invalid_argument] on dimension mismatches. *)
val maximize : num_vars:int -> objective:float array -> constr list -> outcome

(** [minimize] is {!maximize} on the negated objective, with the optimal
    value negated back. *)
val minimize : num_vars:int -> objective:float array -> constr list -> outcome

(** [check ~tolerance constraints point] is [true] when [point] satisfies
    every constraint and non-negativity up to [tolerance]. *)
val check : ?tolerance:float -> constr list -> float array -> bool

(** Default numeric tolerance ([1e-9]). *)
val epsilon : float
